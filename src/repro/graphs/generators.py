"""Graph generators for tests, examples, and the benchmark workloads.

Every generator takes an explicit ``numpy.random.Generator`` (or an int
seed) so that all experiments are reproducible.  Connected generators
plant a random spanning tree first, then add extra edges — the standard
recipe for connected G(n, m) workloads in min-cut benchmarking.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "as_rng",
    "random_connected_graph",
    "random_graph_density",
    "gnp_graph",
    "planted_cut_graph",
    "cycle_graph",
    "grid_graph",
    "barbell_graph",
    "complete_graph",
    "random_spanning_tree_edges",
    "figure1_graph",
]

RngLike = Union[int, np.random.Generator, None]


def as_rng(seed: RngLike) -> np.random.Generator:
    """Coerce an int / None / Generator into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_spanning_tree_edges(n: int, rng: RngLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Endpoints of a uniform-ish random spanning tree on n vertices.

    Uses the random-permutation attachment scheme: vertex ``pi[i]``
    (i >= 1) attaches to a uniformly random earlier vertex in the
    permutation.  Not exactly uniform over spanning trees, but diverse
    enough for workload generation.
    """
    rng = as_rng(rng)
    if n < 2:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    pi = rng.permutation(n)
    attach = (rng.random(n - 1) * np.arange(1, n)).astype(np.int64)
    u = pi[attach]
    v = pi[1:]
    return u.astype(np.int64), v.astype(np.int64)


def _random_extra_edges(
    n: int, count: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """``count`` random non-self-loop vertex pairs (parallel edges allowed)."""
    if count <= 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    u = rng.integers(0, n, size=count)
    v = rng.integers(0, n - 1, size=count)
    v = np.where(v >= u, v + 1, v)  # avoid self loops uniformly
    return u.astype(np.int64), v.astype(np.int64)


def random_connected_graph(
    n: int,
    m: int,
    *,
    rng: RngLike = None,
    max_weight: int = 1,
    coalesce: bool = True,
) -> Graph:
    """Connected graph with ~m edges and integer weights in [1, max_weight].

    A random spanning tree guarantees connectivity; the remaining
    ``m - (n-1)`` edges are uniform random pairs.  With ``coalesce`` the
    parallel duplicates are merged (so the edge count can be slightly
    below m).
    """
    rng = as_rng(rng)
    if n < 1:
        raise ValueError("n must be >= 1")
    tu, tv = random_spanning_tree_edges(n, rng)
    eu, ev = _random_extra_edges(n, m - (n - 1), rng)
    u = np.concatenate([tu, eu])
    v = np.concatenate([tv, ev])
    if max_weight <= 1:
        w = np.ones(u.shape[0], dtype=np.float64)
    else:
        w = rng.integers(1, max_weight + 1, size=u.shape[0]).astype(np.float64)
    g = Graph(n, u, v, w, validate=False)
    return g.coalesced() if coalesce else g


def random_graph_density(
    n: int,
    density_exponent: float,
    *,
    rng: RngLike = None,
    max_weight: int = 1,
) -> Graph:
    """Connected graph with ``m ~ n**density_exponent`` edges — the
    paper's "non-sparse" workloads use exponents > 1 (m = n^(1+eps))."""
    m = int(round(n**density_exponent))
    m = min(max(m, n - 1), n * (n - 1) // 2 * 4)
    return random_connected_graph(n, m, rng=rng, max_weight=max_weight)


def gnp_graph(n: int, p: float, *, rng: RngLike = None, max_weight: int = 1) -> Graph:
    """Erdős–Rényi G(n, p) (possibly disconnected)."""
    rng = as_rng(rng)
    iu, iv = np.triu_indices(n, k=1)
    keep = rng.random(iu.shape[0]) < p
    u, v = iu[keep].astype(np.int64), iv[keep].astype(np.int64)
    if max_weight <= 1:
        w = np.ones(u.shape[0], dtype=np.float64)
    else:
        w = rng.integers(1, max_weight + 1, size=u.shape[0]).astype(np.float64)
    return Graph(n, u, v, w, validate=False)


def planted_cut_graph(
    n_left: int,
    n_right: int,
    cut_weight: float,
    *,
    inside_degree: int = 8,
    rng: RngLike = None,
    max_weight: int = 4,
    cut_edges: Optional[int] = None,
) -> Graph:
    """Two dense random clusters joined by a deliberately light cut.

    The planted bipartition ``[0, n_left) | [n_left, n)`` has total
    crossing weight exactly ``cut_weight`` spread over ``cut_edges``
    edges (default: as many unit-ish edges as needed).  With
    ``inside_degree`` large enough the planted cut is the unique minimum
    cut, which the tests assert via Stoer–Wagner.

    Returns the graph; the planted side mask is
    ``numpy.arange(n) < n_left``.
    """
    rng = as_rng(rng)
    n = n_left + n_right
    parts = []
    for lo, size in ((0, n_left), (n_left, n_right)):
        sub = random_connected_graph(
            size, size * inside_degree // 2, rng=rng, max_weight=max_weight
        )
        parts.append((sub.u + lo, sub.v + lo, sub.w))
    k = cut_edges if cut_edges is not None else max(1, int(math.ceil(cut_weight)))
    cu = rng.integers(0, n_left, size=k).astype(np.int64)
    cv = (n_left + rng.integers(0, n_right, size=k)).astype(np.int64)
    cw = np.full(k, cut_weight / k, dtype=np.float64)
    u = np.concatenate([parts[0][0], parts[1][0], cu])
    v = np.concatenate([parts[0][1], parts[1][1], cv])
    w = np.concatenate([parts[0][2], parts[1][2], cw])
    return Graph(n, u, v, w, validate=False).coalesced()


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """Cycle on n vertices; its min cut is ``2 * weight``."""
    u = np.arange(n, dtype=np.int64)
    v = np.roll(u, -1)
    return Graph(n, u[: n if n > 2 else n - 1], v[: n if n > 2 else n - 1],
                 np.full(n if n > 2 else n - 1, weight))


def grid_graph(rows: int, cols: int, *, rng: RngLike = None, max_weight: int = 1) -> Graph:
    """rows x cols grid; useful as a sparse structured workload."""
    rng = as_rng(rng)
    idx = np.arange(rows * cols).reshape(rows, cols)
    hu, hv = idx[:, :-1].ravel(), idx[:, 1:].ravel()
    vu, vv = idx[:-1, :].ravel(), idx[1:, :].ravel()
    u = np.concatenate([hu, vu]).astype(np.int64)
    v = np.concatenate([hv, vv]).astype(np.int64)
    if max_weight <= 1:
        w = np.ones(u.shape[0], dtype=np.float64)
    else:
        w = rng.integers(1, max_weight + 1, size=u.shape[0]).astype(np.float64)
    return Graph(rows * cols, u, v, w, validate=False)


def barbell_graph(clique: int, bridge_weight: float = 1.0) -> Graph:
    """Two cliques joined by one bridge edge — min cut = bridge_weight."""
    iu, iv = np.triu_indices(clique, k=1)
    u = np.concatenate([iu, iu + clique, [0]]).astype(np.int64)
    v = np.concatenate([iv, iv + clique, [clique]]).astype(np.int64)
    w = np.concatenate([np.ones(2 * iu.shape[0]), [bridge_weight]])
    return Graph(2 * clique, u, v, w, validate=False)


def complete_graph(n: int, *, rng: RngLike = None, max_weight: int = 1) -> Graph:
    """K_n, optionally with random integer weights."""
    rng = as_rng(rng)
    iu, iv = np.triu_indices(n, k=1)
    if max_weight <= 1:
        w = np.ones(iu.shape[0], dtype=np.float64)
    else:
        w = rng.integers(1, max_weight + 1, size=iu.shape[0]).astype(np.float64)
    return Graph(n, iu.astype(np.int64), iv.astype(np.int64), w, validate=False)


def figure1_graph() -> Tuple[Graph, np.ndarray, dict]:
    """The Figure 1 setting of the paper: a small graph with a rooted
    spanning tree illustrating the *interest* relation.

    The published figure's exact topology is not machine-readable from
    the text, so this is a reconstruction engineered to satisfy exactly
    the caption's three relations (asserted in
    ``tests/test_generators.py``): tree edges ``e`` and ``f`` hang in
    disjoint subtrees and are mutually *cross-interested*, while the
    edge ``e'`` above both is *down-interested* in ``f``.

    Layout (edges named by child endpoint): root 0; e' = (1, 0);
    e = (2, 1) and f = (3, 1) side by side under vertex 1; a heavy
    non-tree edge (2, 3) of weight 4 makes e and f want each other, and
    a non-tree edge (3, 0) of weight 2 concentrates T_f's outside
    weight, making e' down-interested in f:

    * w(T_e) = 5 < 2 w(T_e, T_f) = 8 and w(T_f) = 7 < 8 (mutual cross),
    * w(T_e') = 3 < 2 w(T_f, V \\ T_e') = 4 (down).

    Returns ``(graph, tree_parent, labels)`` where ``labels`` maps the
    caption names {"r", "e", "f", "e_prime"} to the child endpoints.
    """
    n = 4
    parent = np.array([-1, 0, 1, 1], dtype=np.int64)
    edges = [
        (1, 0, 1.0),  # e'
        (2, 1, 1.0),  # e
        (3, 1, 1.0),  # f
        (2, 3, 4.0),  # heavy cross edge between T_e and T_f
        (3, 0, 2.0),  # T_f's escape past e'
    ]
    g = Graph.from_edges(n, edges)
    labels = {"r": 0, "e": 2, "f": 3, "e_prime": 1}
    return g, parent, labels
