"""Plain-text graph I/O.

Two formats:

* *edgelist* — ``n m`` header line then ``u v w`` per edge; round-trips
  :class:`repro.graphs.Graph` exactly.
* *DIMACS* — the classic ``p`` / ``e`` line format used by max-flow /
  min-cut benchmark suites (1-based vertices on disk, 0-based in memory).
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph

__all__ = ["write_edgelist", "read_edgelist", "write_dimacs", "read_dimacs"]

PathOrIO = Union[str, Path, TextIO]


def _open(target: PathOrIO, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode), True
    return target, False


def write_edgelist(graph: Graph, target: PathOrIO) -> None:
    """Write ``n m`` header then one ``u v w`` line per edge."""
    fh, owned = _open(target, "w")
    try:
        fh.write(f"{graph.n} {graph.m}\n")
        for u, v, w in graph.edges():
            fh.write(f"{u} {v} {w!r}\n")
    finally:
        if owned:
            fh.close()


def read_edgelist(source: PathOrIO) -> Graph:
    """Inverse of :func:`write_edgelist`."""
    fh, owned = _open(source, "r")
    try:
        header = fh.readline().split()
        if len(header) != 2:
            raise GraphFormatError("edgelist header must be 'n m'")
        n, m = int(header[0]), int(header[1])
        u = np.empty(m, np.int64)
        v = np.empty(m, np.int64)
        w = np.empty(m, np.float64)
        for i in range(m):
            parts = fh.readline().split()
            if len(parts) != 3:
                raise GraphFormatError(f"bad edge line {i}")
            u[i], v[i], w[i] = int(parts[0]), int(parts[1]), float(parts[2])
        return Graph(n, u, v, w)
    finally:
        if owned:
            fh.close()


def write_dimacs(graph: Graph, target: PathOrIO, problem: str = "cut") -> None:
    """Write DIMACS: ``p <problem> n m`` then ``e u v w`` (1-based)."""
    fh, owned = _open(target, "w")
    try:
        fh.write(f"p {problem} {graph.n} {graph.m}\n")
        for u, v, w in graph.edges():
            if w == int(w):
                fh.write(f"e {u + 1} {v + 1} {int(w)}\n")
            else:
                fh.write(f"e {u + 1} {v + 1} {w!r}\n")
    finally:
        if owned:
            fh.close()


def read_dimacs(source: PathOrIO) -> Graph:
    """Read DIMACS ``p``/``e`` lines; comments (``c``) are skipped and a
    missing weight column defaults to 1."""
    fh, owned = _open(source, "r")
    try:
        n = None
        edges = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphFormatError("bad DIMACS problem line")
                n = int(parts[2])
            elif parts[0] in ("e", "a"):
                if n is None:
                    raise GraphFormatError("edge before problem line")
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                w = float(parts[3]) if len(parts) > 3 else 1.0
                edges.append((u, v, w))
        if n is None:
            raise GraphFormatError("missing DIMACS problem line")
        return Graph.from_edges(n, edges)
    finally:
        if owned:
            fh.close()
