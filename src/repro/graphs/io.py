"""Graph I/O: plain-text formats and the binary column format.

Three formats:

* *edgelist* — ``n m`` header line then ``u v w`` per edge; round-trips
  :class:`repro.graphs.Graph` exactly.  Both directions are vectorized
  (numpy column conversions, one bulk write / one bulk parse) — the
  float column is emitted with shortest-repr semantics, so weights
  round-trip bit-identically.
* *DIMACS* — the classic ``p`` / ``e`` line format used by max-flow /
  min-cut benchmark suites (1-based vertices on disk, 0-based in
  memory).  Comment (``c``) lines may be interleaved with edges and
  trailing blank lines are tolerated; duplicate ``p`` lines are a
  :class:`~repro.errors.GraphFormatError`.
* *binary* (``.rpg``) — a versioned, CRC-checked header followed by the
  raw ``u`` / ``v`` / ``w`` columns (little-endian ``int64`` /
  ``int64`` / ``float64``).  :func:`read_graph_binary` opens the
  columns as **read-only** ``np.memmap`` views by default, so graphs
  with tens of millions of edges load without materializing anything
  beyond the pages actually touched.  See ``docs/arena.md`` for the
  byte-level spec.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Dict, TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "write_dimacs",
    "read_dimacs",
    "write_graph_binary",
    "read_graph_binary",
    "graph_binary_info",
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BINARY_HEADER_SIZE",
]

PathOrIO = Union[str, Path, TextIO]


def _open(target: PathOrIO, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode), True
    return target, False


# ----------------------------------------------------------------------
# edgelist
# ----------------------------------------------------------------------
def write_edgelist(graph: Graph, target: PathOrIO) -> None:
    """Write ``n m`` header then one ``u v w`` line per edge.

    The columns are converted in bulk (``astype`` string kernels); the
    weight column uses numpy's shortest-repr float formatting, which is
    byte-identical to ``repr(float(w))`` and guarantees exact
    read-back.
    """
    fh, owned = _open(target, "w")
    try:
        fh.write(f"{graph.n} {graph.m}\n")
        if graph.m:
            su = graph.u.astype("U20")
            sv = graph.v.astype("U20")
            sw = graph.w.astype("U32")  # shortest repr, round-trip exact
            sep = np.array(" ", dtype="U1")
            lines = np.char.add(np.char.add(np.char.add(np.char.add(su, sep), sv), sep), sw)
            fh.write("\n".join(lines.tolist()))
            fh.write("\n")
    finally:
        if owned:
            fh.close()


def read_edgelist(source: PathOrIO) -> Graph:
    """Inverse of :func:`write_edgelist` (bulk-parsed)."""
    fh, owned = _open(source, "r")
    try:
        header = fh.readline().split()
        if len(header) != 2:
            raise GraphFormatError("edgelist header must be 'n m'")
        try:
            n, m = int(header[0]), int(header[1])
        except ValueError:
            raise GraphFormatError("edgelist header must be 'n m'") from None
        if m == 0:
            return Graph(n, np.empty(0, np.int64), np.empty(0, np.int64))
        dt = np.dtype([("u", "i8"), ("v", "i8"), ("w", "f8")])
        try:
            rows = np.atleast_1d(np.loadtxt(fh, dtype=dt, max_rows=m))
        except ValueError as exc:
            raise GraphFormatError(f"bad edge line: {exc}") from None
        if rows.shape[0] != m:
            raise GraphFormatError(
                f"expected {m} edge lines, found {rows.shape[0]}"
            )
        return Graph(n, rows["u"], rows["v"], rows["w"])
    finally:
        if owned:
            fh.close()


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------
def write_dimacs(graph: Graph, target: PathOrIO, problem: str = "cut") -> None:
    """Write DIMACS: ``p <problem> n m`` then ``e u v w`` (1-based)."""
    fh, owned = _open(target, "w")
    try:
        fh.write(f"p {problem} {graph.n} {graph.m}\n")
        for u, v, w in graph.edges():
            if w == int(w):
                fh.write(f"e {u + 1} {v + 1} {int(w)}\n")
            else:
                fh.write(f"e {u + 1} {v + 1} {w!r}\n")
    finally:
        if owned:
            fh.close()


def read_dimacs(source: PathOrIO) -> Graph:
    """Read DIMACS ``p``/``e`` lines.

    Comment (``c``) lines may appear anywhere — before, between, or
    after edges — and blank lines (including trailing ones) are
    skipped.  A second ``p`` line raises :class:`GraphFormatError`
    rather than silently shadowing the first.
    """
    fh, owned = _open(source, "r")
    try:
        n = None
        edges = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if n is not None:
                    raise GraphFormatError("duplicate DIMACS problem line")
                if len(parts) < 4:
                    raise GraphFormatError("bad DIMACS problem line")
                n = int(parts[2])
            elif parts[0] in ("e", "a"):
                if n is None:
                    raise GraphFormatError("edge before problem line")
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                w = float(parts[3]) if len(parts) > 3 else 1.0
                edges.append((u, v, w))
        if n is None:
            raise GraphFormatError("missing DIMACS problem line")
        return Graph.from_edges(n, edges)
    finally:
        if owned:
            fh.close()


# ----------------------------------------------------------------------
# binary column format
# ----------------------------------------------------------------------
BINARY_MAGIC = b"RPROGRF1"
BINARY_VERSION = 1
BINARY_HEADER_SIZE = 64

#: magic, version, flags, n, m, crc_u, crc_v, crc_w, header_crc
_HEADER = struct.Struct("<8sIIQQIIII")


def _column_specs(m: int):
    """``(name, dtype, offset, nbytes)`` for the three columns."""
    specs = []
    off = BINARY_HEADER_SIZE
    for name, dt in (("u", "<i8"), ("v", "<i8"), ("w", "<f8")):
        nbytes = 8 * m
        specs.append((name, np.dtype(dt), off, nbytes))
        off += nbytes
    return specs, off


def write_graph_binary(graph: Graph, path: Union[str, Path]) -> None:
    """Write ``graph`` in the versioned binary column format.

    Layout: a 64-byte header (magic, version, flags, ``n``, ``m``, one
    CRC32 per column, a CRC32 of the header itself), then the raw
    ``u`` / ``v`` / ``w`` columns, little-endian, in that order.
    """
    cols = {
        "u": np.ascontiguousarray(graph.u, dtype="<i8"),
        "v": np.ascontiguousarray(graph.v, dtype="<i8"),
        "w": np.ascontiguousarray(graph.w, dtype="<f8"),
    }
    crcs = {name: zlib.crc32(col.tobytes()) for name, col in cols.items()}
    head = _HEADER.pack(
        BINARY_MAGIC, BINARY_VERSION, 0, graph.n, graph.m,
        crcs["u"], crcs["v"], crcs["w"], 0,
    )
    header_crc = zlib.crc32(head[: _HEADER.size - 4])
    head = head[: _HEADER.size - 4] + struct.pack("<I", header_crc)
    head += b"\x00" * (BINARY_HEADER_SIZE - len(head))
    with open(path, "wb") as fh:
        fh.write(head)
        for name in ("u", "v", "w"):
            fh.write(cols[name].tobytes())


def _read_header(path: Union[str, Path]) -> Dict[str, int]:
    try:
        with open(path, "rb") as fh:
            head = fh.read(BINARY_HEADER_SIZE)
    except OSError as exc:
        raise GraphFormatError(f"cannot read binary graph: {exc}") from None
    if len(head) < BINARY_HEADER_SIZE:
        raise GraphFormatError("binary graph file shorter than its header")
    magic, version, flags, n, m, crc_u, crc_v, crc_w, header_crc = _HEADER.unpack(
        head[: _HEADER.size]
    )
    if magic != BINARY_MAGIC:
        raise GraphFormatError(f"not a repro binary graph (magic {magic!r})")
    if zlib.crc32(head[: _HEADER.size - 4]) != header_crc:
        raise GraphFormatError("binary graph header CRC mismatch")
    if version != BINARY_VERSION:
        raise GraphFormatError(f"unsupported binary graph version {version}")
    return {"n": n, "m": m, "flags": flags,
            "crc_u": crc_u, "crc_v": crc_v, "crc_w": crc_w}


def graph_binary_info(path: Union[str, Path]) -> Dict[str, int]:
    """Header metadata (``n``, ``m``, ``column_bytes``) without loading
    any column data — corpus manifests use this."""
    head = _read_header(path)
    _, expected_size = _column_specs(head["m"])
    return {
        "n": head["n"],
        "m": head["m"],
        "version": BINARY_VERSION,
        "column_bytes": expected_size - BINARY_HEADER_SIZE,
        "file_bytes": expected_size,
    }


def read_graph_binary(
    path: Union[str, Path],
    *,
    mmap: bool = True,
    verify: bool = True,
    validate: bool = True,
) -> Graph:
    """Read a graph written by :func:`write_graph_binary`.

    With ``mmap=True`` (default) the columns are **read-only**
    ``np.memmap`` views — no copy is made, mutation through the public
    arrays raises, and resident memory stays bounded by the pages
    actually touched.  ``verify=True`` checks each column's CRC32
    against the header (a sequential read of the file);
    ``validate=True`` additionally runs the usual :class:`Graph`
    invariant checks (endpoint ranges, positive finite weights).
    """
    head = _read_header(path)
    n, m = head["n"], head["m"]
    specs, expected_size = _column_specs(m)
    actual = Path(path).stat().st_size
    if actual != expected_size:
        raise GraphFormatError(
            f"binary graph truncated: {actual} bytes, expected {expected_size}"
        )
    cols = {}
    for name, dt, off, _ in specs:
        if m == 0:
            cols[name] = np.empty(0, dtype=dt)
        elif mmap:
            cols[name] = np.memmap(path, mode="r", dtype=dt, offset=off, shape=(m,))
        else:
            with open(path, "rb") as fh:
                fh.seek(off)
                cols[name] = np.fromfile(fh, dtype=dt, count=m)
    if verify:
        for name, _, _, _ in specs:
            if zlib.crc32(cols[name]) != head[f"crc_{name}"]:
                raise GraphFormatError(f"binary graph column '{name}' CRC mismatch")
    return Graph(n, cols["u"], cols["v"], cols["w"], validate=validate)
