"""Weighted undirected graph container used by every layer of the library.

The representation is a flat edge list in numpy arrays (``u``, ``v``,
``w``) — the natural shape for the data-parallel primitives: skeleton
sampling transforms ``w`` vector-wise, spanning forests operate on edge
arrays, and the 2-D range structures consume ``(post(u), post(v), w)``
point arrays built directly from these columns.  A CSR adjacency view is
built lazily for the few consumers that need per-vertex iteration.

Graphs are immutable; all transformations return new instances sharing
unchanged arrays.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.csgraph import connected_components as _scipy_cc

from repro.errors import GraphFormatError, IntegerWeightsRequired

__all__ = ["Graph"]


class Graph:
    """An undirected weighted graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    u, v:
        Edge endpoint arrays (each of length m).  Self loops are
        rejected; parallel edges are allowed (the Section 3 machinery
        treats a weight-w edge as w parallel unit edges anyway).
    w:
        Positive edge weights (float64).  Omit for unit weights.
    """

    __slots__ = ("n", "u", "v", "w", "__dict__")

    def __init__(
        self,
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        w: Optional[np.ndarray] = None,
        *,
        validate: bool = True,
    ) -> None:
        self.n = int(n)
        self.u = np.ascontiguousarray(u, dtype=np.int64)
        self.v = np.ascontiguousarray(v, dtype=np.int64)
        if w is None:
            w = np.ones(self.u.shape[0], dtype=np.float64)
        self.w = np.ascontiguousarray(w, dtype=np.float64)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Tuple[int, int, float]] | Iterable[Tuple[int, int]]
    ) -> "Graph":
        """Build from an iterable of ``(u, v)`` or ``(u, v, w)`` tuples."""
        rows = [tuple(e) for e in edges]
        if not rows:
            return cls(n, np.empty(0, np.int64), np.empty(0, np.int64))
        if len(rows[0]) == 2:
            u, v = (np.array(col, dtype=np.int64) for col in zip(*rows))
            return cls(n, u, v)
        u, v, w = zip(*rows)
        return cls(
            n,
            np.array(u, dtype=np.int64),
            np.array(v, dtype=np.int64),
            np.array(w, dtype=np.float64),
        )

    @classmethod
    def empty(cls, n: int) -> "Graph":
        return cls(n, np.empty(0, np.int64), np.empty(0, np.int64))

    def _validate(self) -> None:
        m = self.u.shape[0]
        if self.v.shape[0] != m or self.w.shape[0] != m:
            raise GraphFormatError("edge arrays must have equal length")
        if self.n < 0:
            raise GraphFormatError("negative vertex count")
        if m:
            if self.u.min(initial=0) < 0 or self.v.min(initial=0) < 0:
                raise GraphFormatError("negative vertex id")
            if self.u.max(initial=-1) >= self.n or self.v.max(initial=-1) >= self.n:
                raise GraphFormatError("vertex id out of range")
            if np.any(self.u == self.v):
                raise GraphFormatError("self loops are not allowed")
            if np.any(self.w <= 0):
                raise GraphFormatError("edge weights must be positive")
            if not np.all(np.isfinite(self.w)):
                raise GraphFormatError("edge weights must be finite")

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of (parallel-counted) edges."""
        return int(self.u.shape[0])

    @property
    def total_weight(self) -> float:
        return float(self.w.sum())

    @property
    def nbytes(self) -> int:
        """Bytes held by the three edge columns (the raw-column size of
        the binary format; mmap-backed graphs resident-set gate against
        this)."""
        return int(self.u.nbytes + self.v.nbytes + self.w.nbytes)

    @cached_property
    def _csr(self) -> csr_matrix:
        """Symmetric CSR adjacency (weights summed over parallel edges)."""
        m = self.m
        row = np.concatenate([self.u, self.v])
        col = np.concatenate([self.v, self.u])
        dat = np.concatenate([self.w, self.w])
        return coo_matrix((dat, (row, col)), shape=(self.n, self.n)).tocsr()

    @cached_property
    def weighted_degrees(self) -> np.ndarray:
        """Per-vertex total incident weight (length n)."""
        deg = np.zeros(self.n, dtype=np.float64)
        np.add.at(deg, self.u, self.w)
        np.add.at(deg, self.v, self.w)
        return deg

    @cached_property
    def incidence(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Symmetric incidence arrays ``(offsets, neighbors, edge_ids)``.

        ``neighbors[offsets[x]:offsets[x+1]]`` are the neighbors of x and
        ``edge_ids`` the indices into ``self.u/v/w`` of the corresponding
        edges (each edge appears twice, once per endpoint).
        """
        m = self.m
        ends = np.concatenate([self.u, self.v])
        other = np.concatenate([self.v, self.u])
        eid = np.concatenate([np.arange(m), np.arange(m)])
        order = np.argsort(ends, kind="stable")
        ends_s = ends[order]
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(offsets, ends_s + 1, 1)
        np.cumsum(offsets, out=offsets)
        return offsets, other[order], eid[order]

    def neighbors(self, x: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbor_vertices, edge_ids)`` for vertex ``x``."""
        offsets, nbr, eid = self.incidence
        lo, hi = offsets[x], offsets[x + 1]
        return nbr[lo:hi], eid[lo:hi]

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> Tuple[int, np.ndarray]:
        """``(count, labels)`` of connected components (ignores weights)."""
        if self.n == 0:
            return 0, np.empty(0, np.int64)
        if self.m == 0:
            return self.n, np.arange(self.n, dtype=np.int64)
        k, lab = _scipy_cc(self._csr, directed=False)
        return int(k), lab.astype(np.int64)

    def is_connected(self) -> bool:
        k, _ = self.connected_components()
        return k <= 1

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_weights(self, w: np.ndarray, *, drop_zero: bool = True) -> "Graph":
        """Same topology, new weights.  Zero-weight edges are dropped
        (skeleton sampling produces them)."""
        w = np.asarray(w, dtype=np.float64)
        if w.shape[0] != self.m:
            raise GraphFormatError("weight array length mismatch")
        if drop_zero:
            keep = w > 0
            return Graph(self.n, self.u[keep], self.v[keep], w[keep], validate=False)
        return Graph(self.n, self.u, self.v, w)

    def subgraph_edges(self, mask_or_index: np.ndarray) -> "Graph":
        """Graph with the selected subset of edges (same vertex set)."""
        idx = np.asarray(mask_or_index)
        return Graph(self.n, self.u[idx], self.v[idx], self.w[idx], validate=False)

    def coalesced(self) -> "Graph":
        """Merge parallel edges, summing weights."""
        if self.m == 0:
            return self
        a = np.minimum(self.u, self.v)
        b = np.maximum(self.u, self.v)
        key = a * self.n + b
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        w_s = self.w[order]
        boundary = np.empty(key_s.shape[0], dtype=bool)
        boundary[0] = True
        boundary[1:] = key_s[1:] != key_s[:-1]
        group = np.cumsum(boundary) - 1
        nw = np.zeros(int(group[-1]) + 1, dtype=np.float64)
        np.add.at(nw, group, w_s)
        firsts = np.flatnonzero(boundary)
        return Graph(self.n, a[order][firsts], b[order][firsts], nw, validate=False)

    def contract(self, labels: np.ndarray) -> Tuple["Graph", np.ndarray]:
        """Quotient graph under a vertex labelling.

        Vertices with equal label merge into one supervertex; edges
        inside a class disappear, parallel superedges coalesce (weights
        sum).  Returns ``(quotient, dense_labels)`` where
        ``dense_labels[v]`` is v's supervertex id in ``0..k-1``.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (self.n,):
            raise GraphFormatError("label array must have length n")
        uniq, dense = np.unique(labels, return_inverse=True)
        k = int(uniq.shape[0])
        cu = dense[self.u]
        cv = dense[self.v]
        keep = cu != cv
        quotient = Graph(k, cu[keep], cv[keep], self.w[keep], validate=False).coalesced()
        return quotient, dense

    def integerized(self, *, resolution: float = 1000.0) -> Tuple["Graph", float]:
        """Integer-weight version for multigraph-semantics algorithms.

        Returns ``(graph', scale)`` with ``w' = round(w * scale)``; for
        already-integral weights this is ``(self, 1.0)``.  Real weights
        scale so the lightest edge maps to ``resolution`` units, keeping
        relative rounding error below ``1/resolution``.  Cut values on
        ``graph'`` divide by ``scale`` to speak for ``self``.
        """
        w_int = np.rint(self.w)
        if (
            np.allclose(self.w, w_int, rtol=0, atol=1e-9)
            and w_int.min(initial=1) >= 1
        ):
            return self, 1.0
        scale = resolution / float(self.w.min())
        return self.with_weights(np.maximum(np.rint(self.w * scale), 1.0)), scale

    def require_integer_weights(self) -> np.ndarray:
        """Return weights as int64, raising if they are not integral."""
        w_int = np.rint(self.w)
        if not np.allclose(self.w, w_int, rtol=0, atol=1e-9):
            raise IntegerWeightsRequired(
                "this routine interprets weight-w edges as w parallel unit "
                "edges and requires integer weights"
            )
        return w_int.astype(np.int64)

    # ------------------------------------------------------------------
    # cuts
    # ------------------------------------------------------------------
    def cut_value(self, side: np.ndarray) -> float:
        """Total weight crossing the vertex bipartition ``side`` (boolean
        length-n mask; True = one side)."""
        side = np.asarray(side, dtype=bool)
        if side.shape[0] != self.n:
            raise GraphFormatError("side mask length mismatch")
        cross = side[self.u] != side[self.v]
        return float(self.w[cross].sum())

    def cut_edges(self, side: np.ndarray) -> np.ndarray:
        """Edge indices crossing the bipartition."""
        side = np.asarray(side, dtype=bool)
        return np.flatnonzero(side[self.u] != side[self.v])

    # ------------------------------------------------------------------
    # interop / dunder
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to ``networkx.Graph`` (parallel edges coalesced)."""
        import networkx as nx

        g = self.coalesced()
        out = nx.Graph()
        out.add_nodes_from(range(g.n))
        out.add_weighted_edges_from(zip(g.u.tolist(), g.v.tolist(), g.w.tolist()))
        return out

    @classmethod
    def from_networkx(cls, g, weight: str = "weight") -> "Graph":
        """Import from a networkx graph (nodes relabelled to 0..n-1)."""
        nodes = list(g.nodes())
        index = {x: i for i, x in enumerate(nodes)}
        edges = [
            (index[a], index[b], float(d.get(weight, 1.0)))
            for a, b, d in g.edges(data=True)
        ]
        return cls.from_edges(len(nodes), edges)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        for i in range(self.m):
            yield int(self.u[i]), int(self.v[i]), float(self.w[i])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m}, total_weight={self.total_weight:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
            and np.array_equal(self.w, other.w)
        )

    def __hash__(self) -> int:  # Graphs are immutable by convention
        return hash((self.n, self.m, float(self.w.sum())))
