"""Cut and partition validation helpers used by tests and the driver."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph

__all__ = [
    "ensure_finite_weights",
    "check_side_mask",
    "validate_cut",
    "side_from_vertices",
    "brute_force_min_cut",
]


def ensure_finite_weights(graph: Graph) -> Graph:
    """Reject NaN/inf edge weights and non-finite totals.

    Graphs built through transformation helpers (``with_weights``,
    ``subgraph_edges``, …) skip construction-time validation for speed;
    NaN and inf would otherwise flow silently into the float64 exact
    path, where every comparison against NaN is False and the pipeline
    returns garbage instead of failing.  Entry points call this once.
    """
    if graph.m and not np.all(np.isfinite(graph.w)):
        bad = int(np.flatnonzero(~np.isfinite(graph.w))[0])
        raise GraphFormatError(
            f"edge weights must be finite (edge {bad} has weight {graph.w[bad]!r})"
        )
    with np.errstate(over="ignore"):
        total = graph.total_weight
    if not np.isfinite(total):
        raise GraphFormatError(f"total edge weight is not finite ({total!r})")
    return graph


def check_side_mask(graph: Graph, side: np.ndarray) -> np.ndarray:
    """Validate that ``side`` is a proper bipartition mask (non-trivial on
    both sides) and return it as a boolean array."""
    side = np.asarray(side, dtype=bool)
    if side.shape != (graph.n,):
        raise GraphFormatError("side mask must have length n")
    k = int(side.sum())
    if k == 0 or k == graph.n:
        raise GraphFormatError("cut side must be a proper nonempty subset")
    return side


def validate_cut(graph: Graph, side: np.ndarray, value: float, *, rtol: float = 1e-9) -> None:
    """Assert that ``side`` really induces a cut of weight ``value``."""
    if not np.isfinite(value):
        raise GraphFormatError(f"cut value must be finite, got {value!r}")
    side = check_side_mask(graph, side)
    actual = graph.cut_value(side)
    if not np.isclose(actual, value, rtol=rtol, atol=1e-9):
        raise AssertionError(f"cut mask has value {actual}, reported {value}")


def side_from_vertices(n: int, vertices) -> np.ndarray:
    """Boolean mask from an iterable of vertex ids."""
    side = np.zeros(n, dtype=bool)
    side[np.asarray(list(vertices), dtype=np.int64)] = True
    return side


def brute_force_min_cut(graph: Graph) -> Tuple[float, np.ndarray]:
    """Exhaustive minimum cut over all 2^(n-1) bipartitions.

    Only for tiny test graphs (n <= ~16).  Returns ``(value, side)``.
    Disconnected graphs return value 0 with one component as the side.
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    k, labels = graph.connected_components()
    if k > 1:
        return 0.0, labels == labels[0]
    if graph.n > 20:
        raise ValueError("brute force limited to n <= 20")
    best = np.inf
    best_side = None
    # vertex 0 pinned to side False to halve the enumeration
    for bits in range(1, 1 << (graph.n - 1)):
        side = np.zeros(graph.n, dtype=bool)
        for j in range(graph.n - 1):
            if bits >> j & 1:
                side[j + 1] = True
        val = graph.cut_value(side)
        if val < best:
            best, best_side = val, side
    assert best_side is not None
    return float(best), best_side
