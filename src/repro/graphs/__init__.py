"""Graph substrate: containers, generators, I/O, validation."""

from repro.graphs.generators import (
    as_rng,
    barbell_graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    gnp_graph,
    grid_graph,
    planted_cut_graph,
    random_connected_graph,
    random_graph_density,
    random_spanning_tree_edges,
)
from repro.graphs.generators_extra import (
    community_graph,
    power_law_graph,
    reliability_network,
)
from repro.graphs.graph import Graph
from repro.graphs.io import (
    graph_binary_info,
    read_dimacs,
    read_edgelist,
    read_graph_binary,
    write_dimacs,
    write_edgelist,
    write_graph_binary,
)
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validate import (
    brute_force_min_cut,
    check_side_mask,
    ensure_finite_weights,
    side_from_vertices,
    validate_cut,
)

__all__ = [
    "Graph",
    "MultiGraph",
    "as_rng",
    "random_connected_graph",
    "random_graph_density",
    "gnp_graph",
    "planted_cut_graph",
    "cycle_graph",
    "grid_graph",
    "barbell_graph",
    "complete_graph",
    "random_spanning_tree_edges",
    "figure1_graph",
    "community_graph",
    "power_law_graph",
    "reliability_network",
    "read_edgelist",
    "write_edgelist",
    "read_dimacs",
    "write_dimacs",
    "read_graph_binary",
    "write_graph_binary",
    "graph_binary_info",
    "check_side_mask",
    "ensure_finite_weights",
    "validate_cut",
    "side_from_vertices",
    "brute_force_min_cut",
]
