"""Unweighted-multigraph view used by the Section 3 hierarchy machinery.

The paper's approximation algorithm (Section 3) switches between two
representations of a weighted graph: the weighted edges themselves, and
the *unweighted multigraph* in which a weight-w edge stands for w
parallel unit edges.  Materialising those copies would cost Theta(W)
memory; instead :class:`MultiGraph` stores, per weighted edge, the
*count* of unit copies currently alive.  Binomial subsampling, set
difference, union, and support extraction all become vectorised
operations on the count array, matching the per-edge-copy semantics of
Definitions 3.3/3.9/3.16 exactly (sampling each copy independently with
probability 1/2 == binomial thinning of the count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph

__all__ = ["MultiGraph"]


@dataclass(frozen=True)
class MultiGraph:
    """Counts of unit copies over a fixed underlying edge set.

    All MultiGraphs derived from the same base graph share the ``u``/``v``
    arrays; only ``counts`` differs.  A count of zero means the weighted
    edge currently has no copies alive (but keeps its slot so that layers
    of a hierarchy stay index-aligned).
    """

    n: int
    u: np.ndarray
    v: np.ndarray
    counts: np.ndarray  # int64, >= 0, aligned with u/v

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "MultiGraph":
        """Interpret an integer-weighted graph as a multigraph."""
        counts = graph.require_integer_weights()
        return cls(graph.n, graph.u, graph.v, counts)

    def __post_init__(self) -> None:
        if self.counts.shape != self.u.shape or self.v.shape != self.u.shape:
            raise GraphFormatError("count array misaligned with edges")
        if self.counts.size and self.counts.min() < 0:
            raise GraphFormatError("negative multiplicity")

    # ------------------------------------------------------------------
    @property
    def total_copies(self) -> int:
        """Total number of unit edges alive (the multigraph's |E|)."""
        return int(self.counts.sum())

    @property
    def num_slots(self) -> int:
        return int(self.u.shape[0])

    def support(self) -> np.ndarray:
        """Indices of weighted edges with at least one copy alive."""
        return np.flatnonzero(self.counts > 0)

    def support_graph(self) -> Graph:
        """Weighted :class:`Graph` whose weights are the live counts."""
        idx = self.support()
        return Graph(
            self.n,
            self.u[idx],
            self.v[idx],
            self.counts[idx].astype(np.float64),
            validate=False,
        )

    # ------------------------------------------------------------------
    # multigraph algebra (all index-aligned)
    # ------------------------------------------------------------------
    def thin(self, p: float, rng: np.random.Generator) -> "MultiGraph":
        """Keep each unit copy independently with probability ``p``
        (binomial thinning of every count)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("probability out of range")
        new = rng.binomial(self.counts, p)
        return MultiGraph(self.n, self.u, self.v, new.astype(np.int64))

    def with_counts(self, counts: np.ndarray) -> "MultiGraph":
        return MultiGraph(self.n, self.u, self.v, np.asarray(counts, dtype=np.int64))

    def minus(self, other: "MultiGraph") -> "MultiGraph":
        """Copy-wise difference (clamped at zero): the paper's
        ``G \\ H`` on index-aligned layers."""
        self._check_aligned(other)
        return self.with_counts(np.maximum(self.counts - other.counts, 0))

    def union(self, other: "MultiGraph") -> "MultiGraph":
        """Copy-wise sum."""
        self._check_aligned(other)
        return self.with_counts(self.counts + other.counts)

    def cap(self, limit: np.ndarray | int) -> "MultiGraph":
        """Clamp per-edge multiplicities from above (hierarchy truncation)."""
        return self.with_counts(np.minimum(self.counts, limit))

    def is_subgraph_of(self, other: "MultiGraph") -> bool:
        self._check_aligned(other)
        return bool(np.all(self.counts <= other.counts))

    def _check_aligned(self, other: "MultiGraph") -> None:
        if (
            self.n != other.n
            or self.u.shape != other.u.shape
            or not np.array_equal(self.u, other.u)
            or not np.array_equal(self.v, other.v)
        ):
            raise GraphFormatError("multigraphs are not index-aligned")

    # ------------------------------------------------------------------
    def cut_value(self, side: np.ndarray) -> int:
        """Number of unit copies crossing the bipartition."""
        side = np.asarray(side, dtype=bool)
        cross = side[self.u] != side[self.v]
        return int(self.counts[cross].sum())

    def connected_components(self) -> Tuple[int, np.ndarray]:
        return self.support_graph().connected_components()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiGraph(n={self.n}, slots={self.num_slots}, "
            f"copies={self.total_copies})"
        )
