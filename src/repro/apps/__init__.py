"""Application-level workflows built on the min-cut stack."""

from repro.apps.clustering import ClusteringParams, induced_subgraph, min_cut_clusters
from repro.apps.reliability import ReliabilityReport, reinforce, weakest_partition

__all__ = [
    "ClusteringParams",
    "min_cut_clusters",
    "induced_subgraph",
    "ReliabilityReport",
    "weakest_partition",
    "reinforce",
]
