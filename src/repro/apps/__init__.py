"""Application-level workflows built on the min-cut stack."""

from repro.apps.clustering import (
    ClusteringParams,
    ClusteringStep,
    evolving_clusters,
    induced_subgraph,
    min_cut_clusters,
)
from repro.apps.reliability import (
    MonitorEvent,
    ReliabilityReport,
    monitor,
    reinforce,
    weakest_partition,
)

__all__ = [
    "ClusteringParams",
    "ClusteringStep",
    "min_cut_clusters",
    "evolving_clusters",
    "induced_subgraph",
    "ReliabilityReport",
    "MonitorEvent",
    "weakest_partition",
    "reinforce",
    "monitor",
]
