"""Network-reliability analysis on top of the min-cut stack.

``weakest_partition`` answers "what is the cheapest link-capacity loss
that disconnects this network, and who falls off?"; ``reinforce``
iterates: find the weakest cut, upgrade its links, repeat — reporting
how the survivable capacity climbs (the capacity-planning loop of
``examples/network_reliability.py`` as a tested API).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = ["ReliabilityReport", "weakest_partition", "reinforce"]


@dataclass(frozen=True)
class ReliabilityReport:
    """One round of the reinforcement loop."""

    cut_value: float
    isolated: np.ndarray  # the smaller side's vertex ids
    crossing_edges: np.ndarray  # edge indices in the round's graph


def weakest_partition(
    graph: Graph,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> ReliabilityReport:
    """The minimum cut phrased as a reliability report."""
    from repro.core.mincut import minimum_cut

    res = minimum_cut(graph, rng=rng, ledger=ledger)
    side = res.side if res.side.sum() * 2 <= graph.n else ~res.side
    return ReliabilityReport(
        cut_value=res.value,
        isolated=np.flatnonzero(side),
        crossing_edges=graph.cut_edges(res.side),
    )


def reinforce(
    graph: Graph,
    rounds: int,
    factor: float = 2.0,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> List[ReliabilityReport]:
    """Iteratively upgrade the weakest cut's links by ``factor``.

    Returns the per-round reports; ``reports[i].cut_value`` is
    non-decreasing in i (upgrading a cut cannot lower any other cut).
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    rng = rng if rng is not None else np.random.default_rng()
    reports: List[ReliabilityReport] = []
    current = graph
    for _ in range(rounds):
        rep = weakest_partition(current, rng=rng, ledger=ledger)
        reports.append(rep)
        w = current.w.copy()
        w[rep.crossing_edges] *= factor
        current = current.with_weights(w)
    return reports
