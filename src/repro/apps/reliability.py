"""Network-reliability analysis on top of the min-cut stack.

``weakest_partition`` answers "what is the cheapest link-capacity loss
that disconnects this network, and who falls off?"; ``reinforce``
iterates: find the weakest cut, upgrade its links, repeat — reporting
how the survivable capacity climbs (the capacity-planning loop of
``examples/network_reliability.py`` as a tested API).

Both are now backed by :class:`repro.engine.CutEngine`.
``weakest_partition`` (and ``reinforce``'s default mode) run the engine
one-shot — bit-identical to the historical direct
:func:`repro.minimum_cut` calls (pinned in ``tests/test_apps.py``).
``reinforce(requery=True)`` additionally reuses the engine's packed
trees across rounds via :meth:`~repro.engine.CutEngine.update`: only
the cheap 2-respecting search re-runs per round until the climbing cut
value exhausts the packing's coverage, at which point the engine
rebases and re-packs.

``monitor`` is the evolving-graph entry point: it feeds a stream of
mutation batches (additions, removals, reweights) through one engine's
:meth:`~repro.engine.CutEngine.update` surface and reports the weakest
partition after every step, with the epoch/staleness bookkeeping a
capacity planner needs to know when edge indices shifted underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = [
    "ReliabilityReport",
    "MonitorEvent",
    "weakest_partition",
    "reinforce",
    "monitor",
]


@dataclass(frozen=True)
class ReliabilityReport:
    """One round of the reinforcement loop."""

    cut_value: float
    isolated: np.ndarray  # the smaller side's vertex ids
    crossing_edges: np.ndarray  # edge indices in the round's graph


def _report(graph: Graph, value: float, side: np.ndarray) -> ReliabilityReport:
    small = side if side.sum() * 2 <= graph.n else ~side
    return ReliabilityReport(
        cut_value=value,
        isolated=np.flatnonzero(small),
        crossing_edges=graph.cut_edges(side),
    )


def weakest_partition(
    graph: Graph,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> ReliabilityReport:
    """The minimum cut phrased as a reliability report."""
    from repro.engine.service import CutEngine

    res = CutEngine(graph, rng=rng, ledger=ledger).min_cut()
    return _report(graph, res.value, res.side)


def reinforce(
    graph: Graph,
    rounds: int,
    factor: float = 2.0,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
    requery: bool = False,
) -> List[ReliabilityReport]:
    """Iteratively upgrade the weakest cut's links by ``factor``.

    Returns the per-round reports; ``reports[i].cut_value`` is
    non-decreasing in i (upgrading a cut cannot lower any other cut).

    ``requery=False`` (the default) preprocesses each round's graph
    afresh — bit-identical to the historical loop.  ``requery=True``
    binds one :class:`repro.engine.CutEngine` and answers later rounds
    through ``CutEngine.update(reweight=...)`` over the same
    packed trees (re-running only the per-query search), trading the
    per-round packing cost for the engine's coverage guarantee; both
    modes report valid cuts w.h.p. and the same monotone trajectory.
    All round reports index ``crossing_edges`` into the *initial*
    graph's edge order in this mode (the topology never changes).
    """
    from repro.engine.service import CutEngine

    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    rng = rng if rng is not None else np.random.default_rng()
    reports: List[ReliabilityReport] = []

    if requery:
        engine = CutEngine(graph, rng=rng, ledger=ledger)
        w = np.array(graph.w, dtype=np.float64, copy=True)
        for round_no in range(rounds):
            # weight-only mutations through the engine's one mutation
            # surface (update); staleness never rebases here — only the
            # coverage trigger, as the historical requery loop had
            res = (
                engine.min_cut()
                if round_no == 0
                else engine.update(reweight=w, max_staleness=None).result
            )
            # cut_edges only reads topology + side, so indices stay
            # valid against the initial edge order across all rounds
            rep = _report(graph, res.value, res.side)
            reports.append(rep)
            w[rep.crossing_edges] *= factor
        return reports

    current = graph
    for _ in range(rounds):
        rep = weakest_partition(current, rng=rng, ledger=ledger)
        reports.append(rep)
        w = current.w.copy()
        w[rep.crossing_edges] *= factor
        current = current.with_weights(w)
    return reports


@dataclass(frozen=True)
class MonitorEvent:
    """The weakest partition after one step of an evolving network.

    ``report.crossing_edges`` indexes into **that step's** graph
    (``graph``); whenever ``epoch`` changed since the previous event,
    edge indices from earlier steps are stale — removals shift the
    survivor order and rebases renumber nothing but signal that the
    engine rebuilt its artifacts.
    """

    step: int
    graph: Graph
    report: ReliabilityReport
    epoch: int
    staleness: int
    rebased: bool
    rebase_reason: Optional[str]
    verified: Optional[bool]


def monitor(
    graph: Graph,
    update_batches: Iterable[Mapping[str, object]],
    *,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
    rebase_threshold: Optional[float] = 3.0,
    max_staleness: Optional[float] = 0.5,
) -> List[MonitorEvent]:
    """Track the weakest partition of an evolving network.

    ``update_batches`` yields keyword dicts for
    :meth:`repro.engine.CutEngine.update` (``add_edges`` /
    ``remove_edges`` / ``reweight``); each batch is applied in order
    and answered incrementally off the packed trees where coverage
    permits.  Event 0 is the initial graph's partition; event ``i >= 1``
    follows batch ``i - 1``.  Every post-update cut is verified exact
    (``verified``); a disconnected step simply reports cut value 0 with
    the detached component isolated.
    """
    from repro.engine.service import CutEngine

    engine = CutEngine(graph, rng=rng, ledger=ledger)
    res = engine.min_cut()
    events = [
        MonitorEvent(
            step=0,
            graph=engine.graph,
            report=_report(engine.graph, res.value, res.side),
            epoch=engine.epoch,
            staleness=engine.staleness,
            rebased=False,
            rebase_reason=None,
            verified=None,
        )
    ]
    for step, batch in enumerate(update_batches, start=1):
        upd = engine.update(
            rebase_threshold=rebase_threshold,
            max_staleness=max_staleness,
            **dict(batch),
        )
        events.append(
            MonitorEvent(
                step=step,
                graph=engine.graph,
                report=_report(engine.graph, upd.value, upd.result.side),
                epoch=upd.epoch,
                staleness=upd.staleness,
                rebased=upd.rebased,
                rebase_reason=upd.rebase_reason,
                verified=None if upd.verification is None else upd.verification.ok,
            )
        )
    return events
