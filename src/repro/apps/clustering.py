"""Min-cut clustering: recursive community splitting.

Minimum cuts separate the most weakly connected group first; recursively
splitting while the relative cut cost stays low recovers community
structure.  This is the example workflow of
``examples/community_split.py`` promoted to a tested API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = [
    "ClusteringParams",
    "ClusteringStep",
    "induced_subgraph",
    "min_cut_clusters",
    "evolving_clusters",
]


@dataclass(frozen=True)
class ClusteringParams:
    """Stopping rule for the recursive splitter.

    A split is accepted while ``cut_value / smaller_side <=
    max_cut_per_vertex`` and both sides have at least ``min_size``
    vertices; tighter thresholds yield coarser clusterings.
    """

    max_cut_per_vertex: float = 0.8
    min_size: int = 4


def induced_subgraph(graph: Graph, vertices: np.ndarray) -> Graph:
    """Subgraph on ``vertices`` with ids compacted to 0..k-1 (order of
    ``vertices`` preserved)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return Graph.empty(0)
    index = -np.ones(graph.n, dtype=np.int64)
    index[vertices] = np.arange(vertices.shape[0])
    keep = (index[graph.u] >= 0) & (index[graph.v] >= 0)
    return Graph(
        int(vertices.shape[0]),
        index[graph.u[keep]],
        index[graph.v[keep]],
        graph.w[keep],
        validate=False,
    )


def min_cut_clusters(
    graph: Graph,
    params: ClusteringParams = ClusteringParams(),
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
    *,
    cache=None,
) -> List[np.ndarray]:
    """Partition the vertex set by recursive minimum cuts.

    Returns a list of vertex-id arrays (disjoint, covering, each sorted
    ascending), ordered by smallest member.  Deterministic given ``rng``.

    Each induced subgraph is solved through a
    :class:`repro.engine.CutEngine` threading the shared ``rng`` (and
    one shared :class:`repro.engine.ArtifactCache` across the whole
    recursion), so the clustering is bit-identical to the historical
    direct :func:`repro.minimum_cut` recursion (pinned in
    ``tests/test_apps.py``) while repeated runs over the same subgraphs
    stay warm.  Pass ``cache`` to amortize across *calls* too — the
    evolving-graph loop does, so subgraphs an edit left untouched replay
    their artifacts instead of re-packing.
    """
    from repro.engine.cache import ArtifactCache
    from repro.engine.service import CutEngine

    if graph.n == 0:
        return []
    rng = rng if rng is not None else np.random.default_rng()
    cache = cache if cache is not None else ArtifactCache()

    def split(vertices: np.ndarray) -> List[np.ndarray]:
        if vertices.shape[0] < 2 * params.min_size:
            return [vertices]
        sub = induced_subgraph(graph, vertices)
        k, labels = sub.connected_components()
        if k > 1:
            parts: List[np.ndarray] = []
            for c in range(k):
                parts.extend(split(vertices[labels == c]))
            return parts
        res = CutEngine(sub, rng=rng, ledger=ledger, cache=cache).min_cut()
        smaller = min(int(res.side.sum()), sub.n - int(res.side.sum()))
        if smaller < params.min_size:
            return [vertices]
        if res.value / smaller > params.max_cut_per_vertex:
            return [vertices]
        return split(vertices[res.side]) + split(vertices[~res.side])

    parts = split(np.arange(graph.n, dtype=np.int64))
    parts = [np.sort(p) for p in parts]
    parts.sort(key=lambda p: int(p[0]))
    return parts


@dataclass(frozen=True)
class ClusteringStep:
    """One step of an evolving clustering: the graph after the step's
    mutation batch, its clusters, and the fraction of vertices whose
    cluster membership changed versus the previous step (``drift``;
    0.0 for the initial step)."""

    step: int
    graph: Graph
    clusters: List[np.ndarray]
    drift: float


def _membership(n: int, clusters: List[np.ndarray]) -> List[frozenset]:
    owner: List[frozenset] = [frozenset()] * n
    for part in clusters:
        members = frozenset(int(v) for v in part)
        for v in part:
            owner[int(v)] = members
    return owner


def evolving_clusters(
    graph: Graph,
    update_batches: Iterable[Mapping[str, object]],
    params: ClusteringParams = ClusteringParams(),
    *,
    seed: int = 0,
    ledger: Ledger = NULL_LEDGER,
) -> List[ClusteringStep]:
    """Cluster an evolving graph, re-using artifacts across steps.

    ``update_batches`` yields keyword dicts in the
    :meth:`repro.engine.CutEngine.update` spelling (``add_edges`` /
    ``remove_edges`` / ``reweight``), applied cumulatively through
    :func:`repro.engine.deltas.as_delta`.  Step 0 clusters the initial
    graph; step ``i >= 1`` clusters the graph after batch ``i - 1``.

    Every step re-runs the recursive splitter with a fresh
    ``default_rng(seed)`` but **one shared**
    :class:`~repro.engine.ArtifactCache`: any subgraph whose content
    (and rng position in the recursion) an edit left unchanged replays
    its cached artifacts instead of re-packing, so local edits
    re-cluster at a fraction of a cold run.  ``drift`` quantifies how
    much of the community structure each batch actually moved.
    """
    from repro.engine.cache import ArtifactCache
    from repro.engine.deltas import as_delta

    cache = ArtifactCache()
    steps: List[ClusteringStep] = []
    current = graph
    prev_owner: Optional[List[frozenset]] = None
    step = 0
    batches = [None] + list(update_batches)
    for batch in batches:
        if batch is not None:
            current = as_delta(current, **dict(batch)).apply(current)
        clusters = min_cut_clusters(
            current,
            params,
            rng=np.random.default_rng(seed),
            ledger=ledger,
            cache=cache,
        )
        owner = _membership(current.n, clusters)
        if prev_owner is None:
            drift = 0.0
        else:
            moved = sum(1 for a, b in zip(owner, prev_owner) if a != b)
            drift = moved / max(current.n, 1)
        steps.append(
            ClusteringStep(step=step, graph=current, clusters=clusters, drift=drift)
        )
        prev_owner = owner
        step += 1
    return steps
