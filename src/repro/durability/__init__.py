"""Durable state for the cut-serving daemon.

Three layers, each usable on its own:

* :mod:`repro.durability.wal` — a checksummed, length-prefixed
  write-ahead log with a chained fingerprint spine, torn-tail
  truncation, and a configurable fsync policy;
* :mod:`repro.durability.snapshot` — atomic, hash-verified snapshots
  with the same envelope discipline as
  :mod:`repro.resilience.checkpointing`;
* :mod:`repro.durability.state` — :class:`DurableState`, which ties
  them to the serve layer's :class:`~repro.serve.tenancy.TenantRegistry`:
  log-before-ack appends, interval snapshots with rotation/retention,
  and verified crash recovery through the real
  :meth:`~repro.engine.CutEngine.update` path.

See ``docs/robustness.md`` (durability section) for the state-dir
layout and the ack-durability contract per fsync policy.
"""

from repro.durability.snapshot import (
    SNAPSHOT_VERSION,
    list_snapshots,
    load_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.durability.state import GENESIS_CHAIN, DurableState
from repro.durability.wal import (
    FSYNC_POLICIES,
    MAGIC,
    WalRecord,
    WriteAheadLog,
    advance_chain,
    encode_body,
    scan,
)

__all__ = [
    "DurableState",
    "GENESIS_CHAIN",
    "FSYNC_POLICIES",
    "MAGIC",
    "SNAPSHOT_VERSION",
    "WalRecord",
    "WriteAheadLog",
    "advance_chain",
    "encode_body",
    "scan",
    "list_snapshots",
    "load_snapshot",
    "snapshot_path",
    "write_snapshot",
]
