"""Atomic, hash-verified snapshots of the daemon's durable state.

A snapshot file is a pickle of ``{"version", "sha256", "payload"}``
where ``payload`` is the *pickled bytes* of the inner dict
``{"seq", "chain", "payload"}`` and ``sha256`` is the hex digest of
those bytes — the same outer-envelope/verify-on-read discipline as
:mod:`repro.resilience.checkpointing`.  Writes go to a ``.tmp`` sibling
which is loaded back and hash-verified *before* :func:`os.replace`
promotes it, so a crash — or a verification failure — leaves either the
old file or a proven-good new one, never a half-written hybrid; that
discipline is what lets the caller prune older generations safely.

``seq`` is the WAL sequence number the snapshot captures (every record
with ``seq <= snapshot.seq`` is folded in) and ``chain`` is the WAL's
chained fingerprint at that point — recovery refuses a snapshot whose
chain does not match the log it is paired with.

The ``snapshot.partial`` fault site truncates the inner payload bytes
before the write, simulating a snapshot torn by a crash mid-dump: the
envelope hash then fails verification and the caller keeps the previous
generation.
"""

from __future__ import annotations

import os
import pickle
import re
from hashlib import sha256
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import RecoveryError
from repro.resilience.faults import SITE_SNAPSHOT_PARTIAL, FaultPlan
from repro.durability.wal import _poll

__all__ = [
    "SNAPSHOT_VERSION",
    "snapshot_path",
    "list_snapshots",
    "write_snapshot",
    "load_snapshot",
]

SNAPSHOT_VERSION = 1
_SNAP_RE = re.compile(r"^snapshot-(\d{16})\.bin$")


def snapshot_path(state_dir: str, seq: int) -> str:
    return os.path.join(state_dir, f"snapshot-{int(seq):016d}.bin")


def list_snapshots(state_dir: str) -> List[Tuple[int, str]]:
    """``[(seq, path), ...]`` of snapshot files, newest (highest seq) last."""
    found = []
    for name in os.listdir(state_dir):
        m = _SNAP_RE.match(name)
        if m:
            found.append((int(m.group(1)), os.path.join(state_dir, name)))
    found.sort()
    return found


def write_snapshot(
    state_dir: str,
    *,
    seq: int,
    chain: str,
    payload: Dict[str, object],
    faults: Optional[FaultPlan] = None,
) -> str:
    """Atomically write a snapshot at WAL position ``(seq, chain)``.

    The file is read back and hash-verified before this returns — a
    raised :class:`~repro.errors.RecoveryError` means *no* usable new
    snapshot exists and the caller must keep every older generation.
    """
    inner = pickle.dumps(
        {"seq": int(seq), "chain": chain, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    if _poll(faults, SITE_SNAPSHOT_PARTIAL) is not None:
        inner = inner[: max(1, len(inner) // 3)]
    envelope = {
        "version": SNAPSHOT_VERSION,
        "sha256": sha256(inner).hexdigest(),
        "payload": inner,
    }
    path = snapshot_path(state_dir, seq)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    # verify-back *before* promoting: prove the bytes on disk
    # reconstruct, so a bad write can neither clobber an existing good
    # snapshot at this seq nor license pruning the state it supersedes
    try:
        load_snapshot(tmp)
    except RecoveryError:
        os.unlink(tmp)
        raise
    os.replace(tmp, path)
    obs.counters().add("wal.snapshots")
    return path


def load_snapshot(path: str) -> Dict[str, object]:
    """Load and verify one snapshot; returns ``{"seq", "chain", "payload"}``.

    Raises :class:`~repro.errors.RecoveryError` on unreadable bytes, an
    unknown version, or a content-hash mismatch.
    """
    try:
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise RecoveryError(f"{path}: unreadable snapshot ({exc})") from exc
    if not isinstance(envelope, dict) or envelope.get("version") != SNAPSHOT_VERSION:
        raise RecoveryError(
            f"{path}: unknown snapshot version "
            f"{envelope.get('version') if isinstance(envelope, dict) else '?'!r}"
        )
    inner = envelope.get("payload", b"")
    if sha256(inner).hexdigest() != envelope.get("sha256"):
        raise RecoveryError(f"{path}: snapshot content hash mismatch")
    try:
        state = pickle.loads(inner)
    except Exception as exc:  # hash passed but bytes don't reconstruct
        raise RecoveryError(f"{path}: snapshot payload does not unpickle") from exc
    if not isinstance(state, dict) or "seq" not in state or "chain" not in state:
        raise RecoveryError(f"{path}: snapshot payload missing seq/chain")
    return state
