"""Checksummed, length-prefixed write-ahead log.

File format
-----------
A WAL file is the 8-byte magic ``RPROWAL1`` followed by a sequence of
*frames*.  Each frame is a fixed ``>II`` prefix — body length, then the
CRC32 of the body — followed by the UTF-8 canonical-JSON body itself::

    +----------+----------+------------------+
    | len (u32)| crc (u32)| body (len bytes) |
    +----------+----------+------------------+

The first frame of every file is a **header record**::

    {"kind": "header", "version": 1, "start_seq": S, "chain": H, "epoch": G}

``start_seq`` is the sequence number of the first body record the file
will hold, ``chain`` is the chained fingerprint *before* that record
(so a reader can resume mid-stream after older files were pruned), and
``epoch`` is the rotation generation.  Every subsequent frame is a body
record ``{"seq": N, "kind": ..., "data": {...}}``; after writing body
bytes ``b`` the chain advances as
``sha256(chain_hex + b"\\x00wal\\x00" + b)``, giving the whole stream a
tamper-evident spine that recovery verifies against snapshots.

Scan policy (:func:`scan`)
--------------------------
* An incomplete frame prefix, or a declared length running past EOF, is
  a **torn tail**: the expected outcome of a crash mid-append.  The
  valid prefix is returned and the caller may truncate.
* A CRC mismatch on the **final** complete frame is treated the same
  way — the crash interrupted the write after the length landed.
* A CRC mismatch followed by further valid frames is **corruption**
  (bit rot or tampering, not a crash) and raises a typed
  :class:`~repro.errors.WalCorruptionError` — never a silent skip.

Fsync policy
------------
Every append is flushed to the OS unconditionally, so a SIGKILL never
loses an acked record; the configurable policy only governs how often
``os.fsync`` is issued, i.e. durability across *machine* crashes:
``always`` fsyncs per append, ``batch`` every ``batch_every`` appends
(and on close/rotation), ``never`` leaves it to the kernel.

Fault sites ``wal.torn_write`` and ``wal.corrupt_record`` (see
:mod:`repro.resilience.faults`) are polled inside :meth:`append` to let
the chaos stack manufacture exactly the two failure shapes above.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import RecoveryError, SimulatedCrash, WalCorruptionError
from repro.resilience.faults import (
    SITE_WAL_CORRUPT_RECORD,
    SITE_WAL_TORN_WRITE,
    FaultPlan,
    poll as poll_ambient,
)


def _poll(plan: Optional[FaultPlan], site: str):
    """Poll an explicit plan if one was handed in, else the ambient one."""
    return plan.poll(site) if plan is not None else poll_ambient(site)

__all__ = [
    "MAGIC",
    "FSYNC_POLICIES",
    "WalRecord",
    "WriteAheadLog",
    "advance_chain",
    "encode_body",
    "scan",
    "torn_creation",
]

MAGIC = b"RPROWAL1"
_FRAME = struct.Struct(">II")
FSYNC_POLICIES = ("always", "batch", "never")


def encode_body(record: Dict[str, object]) -> bytes:
    """Canonical-JSON bytes for ``record`` (sorted keys, no spaces)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def advance_chain(chain: str, body: bytes) -> str:
    """The chained fingerprint after appending raw body bytes."""
    h = hashlib.sha256()
    h.update(chain.encode("ascii"))
    h.update(b"\x00wal\x00")
    h.update(body)
    return h.hexdigest()


@dataclass(frozen=True)
class WalRecord:
    """One decoded body record plus its position and post-append chain."""

    seq: int
    kind: str
    data: Dict[str, object]
    chain: str  # chained fingerprint *after* this record


def _read_frame(buf: bytes, off: int) -> Optional[Tuple[bytes, int]]:
    """Decode one frame at ``off``; None on torn tail; raises on bad CRC."""
    if off + _FRAME.size > len(buf):
        return None
    length, crc = _FRAME.unpack_from(buf, off)
    start = off + _FRAME.size
    if start + length > len(buf):
        return None
    body = buf[start : start + length]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise WalCorruptionError(
            f"WAL frame at byte {off} fails its CRC32 check"
        )
    return body, start + length


def scan(path: str) -> Tuple[Dict[str, object], List[WalRecord], int]:
    """Read a WAL file, returning ``(header, records, valid_length)``.

    ``valid_length`` is the byte offset of the end of the last valid
    frame — the length the file should be truncated to before appending
    (it equals the file size when the tail is clean).  Torn tails are
    tolerated per the module policy; mid-file corruption raises
    :class:`WalCorruptionError`, a missing/garbled header raises
    :class:`RecoveryError`.
    """
    with open(path, "rb") as fh:
        buf = fh.read()
    if len(buf) < len(MAGIC) or buf[: len(MAGIC)] != MAGIC:
        raise WalCorruptionError(f"{path}: bad or missing WAL magic")
    frames: List[Tuple[bytes, int]] = []  # (body, end_offset)
    off = len(MAGIC)
    torn_at: Optional[int] = None
    while off < len(buf):
        try:
            decoded = _read_frame(buf, off)
        except WalCorruptionError:
            # Bad CRC: only acceptable if *nothing valid* follows — then
            # it is a torn final write, not corruption.  Probe ahead.
            if _has_valid_frame_after(buf, off):
                raise WalCorruptionError(
                    f"{path}: corrupted record at byte {off} is followed by "
                    "further valid records; refusing to skip it"
                ) from None
            torn_at = off
            break
        if decoded is None:
            torn_at = off
            break
        body, off = decoded
        frames.append((body, off))
    valid_length = frames[-1][1] if frames else len(MAGIC)
    if not frames:
        raise RecoveryError(f"{path}: WAL file has no header record")
    header = _decode_header(path, frames[0][0])
    chain = str(header["chain"])
    records: List[WalRecord] = []
    for body, _end in frames[1:]:
        try:
            rec = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WalCorruptionError(
                f"{path}: record body passed CRC but is not valid JSON "
                f"({exc})"
            ) from exc
        chain = advance_chain(chain, body)
        records.append(
            WalRecord(
                seq=int(rec["seq"]),
                kind=str(rec["kind"]),
                data=dict(rec.get("data", {})),
                chain=chain,
            )
        )
    return header, records, valid_length


def _has_valid_frame_after(buf: bytes, bad_off: int) -> bool:
    """Does any complete, CRC-valid frame start after the bad one?

    A torn final write can only damage the *last* frame; if a valid
    frame exists at any later offset the damage is mid-file corruption.
    The probe is conservative: it slides byte-by-byte, so a valid
    frame is found wherever the next append landed.
    """
    off = bad_off + 1
    while off + _FRAME.size <= len(buf):
        try:
            if _read_frame(buf, off) is not None:
                return True
        except WalCorruptionError:
            pass
        off += 1
    return False


def torn_creation(path: str) -> bool:
    """Is this file the debris of a crash *during* :meth:`WriteAheadLog.create`?

    True iff the content is a strict prefix of a freshly-created file:
    a prefix of the magic, or the magic followed by at most one torn
    header frame (incomplete, or CRC-failing with nothing valid after).
    Such a file provably holds no body records, so recovery may discard
    it when it is the newest generation — anything else (wrong bytes
    where the magic belongs, an intact header) stays a hard error.
    """
    with open(path, "rb") as fh:
        buf = fh.read()
    if len(buf) < len(MAGIC):
        return buf == MAGIC[: len(buf)]
    if buf[: len(MAGIC)] != MAGIC:
        return False
    off = len(MAGIC)
    if off == len(buf):
        return True
    try:
        decoded = _read_frame(buf, off)
    except WalCorruptionError:
        return not _has_valid_frame_after(buf, off)
    return decoded is None


def _decode_header(path: str, body: bytes) -> Dict[str, object]:
    try:
        header = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"{path}: WAL header is not valid JSON") from exc
    if header.get("kind") != "header" or header.get("version") != 1:
        raise RecoveryError(
            f"{path}: first WAL record is not a version-1 header "
            f"(got {header!r})"
        )
    return header


class WriteAheadLog:
    """Appender over one WAL file.

    Use :meth:`create` for a fresh file (writes magic + header) or
    :meth:`open_append` to resume one (scans, truncates a torn tail,
    positions after the last valid frame).
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "always",
        batch_every: int = 8,
        faults=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = path
        self.fsync = fsync
        self.batch_every = max(1, int(batch_every))
        self.faults = faults
        self.header: Dict[str, object] = {}
        self.chain = ""
        self.next_seq = 0
        self.appends = 0
        self._unsynced = 0
        self._fh: Optional[io.BufferedWriter] = None

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str,
        *,
        start_seq: int,
        chain: str,
        epoch: int = 0,
        fsync: str = "always",
        batch_every: int = 8,
        faults=None,
    ) -> "WriteAheadLog":
        wal = cls(path, fsync=fsync, batch_every=batch_every, faults=faults)
        wal.header = {
            "kind": "header",
            "version": 1,
            "start_seq": int(start_seq),
            "chain": chain,
            "epoch": int(epoch),
        }
        wal.chain = chain
        wal.next_seq = int(start_seq)
        fh = open(path, "xb")
        wal._fh = fh
        fh.write(MAGIC)
        body = encode_body(wal.header)
        fh.write(_FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF))
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())  # a file that exists has a valid header
        return wal

    @classmethod
    def open_append(
        cls,
        path: str,
        *,
        fsync: str = "always",
        batch_every: int = 8,
        faults=None,
    ) -> "WriteAheadLog":
        header, records, valid_length = scan(path)
        size = os.path.getsize(path)
        wal = cls(path, fsync=fsync, batch_every=batch_every, faults=faults)
        wal.header = header
        if records:
            wal.chain = records[-1].chain
            wal.next_seq = records[-1].seq + 1
        else:
            wal.chain = str(header["chain"])
            wal.next_seq = int(header["start_seq"])
        fh = open(path, "r+b")
        wal._fh = fh
        if valid_length < size:
            fh.truncate(valid_length)
            obs.counters().add("wal.truncated_tail")
        fh.seek(valid_length)
        return wal

    # -- appends -------------------------------------------------------
    def append(self, kind: str, data: Dict[str, object]) -> Tuple[int, str]:
        """Durably append one record; returns ``(seq, chain_after)``.

        The in-memory chain always advances over the *intended* body
        bytes — under the ``wal.corrupt_record`` fault the bytes that
        hit disk differ, which is exactly the bit-rot shape recovery
        must detect.
        """
        if self._fh is None:
            raise RecoveryError(f"{self.path}: WAL is closed")
        seq = self.next_seq
        body = encode_body({"seq": seq, "kind": kind, "data": data})
        crc = zlib.crc32(body) & 0xFFFFFFFF
        frame = _FRAME.pack(len(body), crc) + body
        reg = obs.counters()
        torn = _poll(self.faults, SITE_WAL_TORN_WRITE)
        corrupt = _poll(self.faults, SITE_WAL_CORRUPT_RECORD)
        if corrupt is not None:
            frame = _corrupt_frame(frame, int(corrupt.seed or 0) + seq)
        if torn is not None:
            cut = max(1, len(frame) // 2)
            self._fh.write(frame[:cut])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            raise SimulatedCrash(
                f"wal.torn_write: crashed mid-append of seq {seq}"
            )
        self._fh.write(frame)
        self._fh.flush()  # never lose acked records to userspace buffers
        self.appends += 1
        self._unsynced += 1
        reg.add("wal.appends")
        reg.add("wal.bytes", len(frame))
        if self.fsync == "always" or (
            self.fsync == "batch" and self._unsynced >= self.batch_every
        ):
            self.sync()
        self.chain = advance_chain(self.chain, body)
        self.next_seq = seq + 1
        return seq, self.chain

    def sync(self) -> None:
        if self._fh is not None and self._unsynced:
            os.fsync(self._fh.fileno())
            self._unsynced = 0
            obs.counters().add("wal.fsyncs")

    def close(self) -> None:
        if self._fh is None:
            return
        try:
            self._fh.flush()
            if self.fsync != "never":
                self.sync()
        finally:
            self._fh.close()
            self._fh = None

    def abandon(self) -> None:
        """Close the fd without flushing policy niceties (crash sim)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None


def _corrupt_frame(frame: bytes, seed: int) -> bytes:
    """Flip a few body bytes after the CRC was computed (bit-rot sim)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    mutable = bytearray(frame)
    body_start = _FRAME.size
    if len(mutable) > body_start:
        for _ in range(3):
            i = body_start + int(rng.integers(0, len(mutable) - body_start))
            mutable[i] ^= int(rng.integers(1, 256))
    return bytes(mutable)
