"""Durable daemon state: WAL + snapshots + verified recovery.

:class:`DurableState` owns one *state directory*::

    state-dir/
      wal-0000000000000001.log      # records 1..N of generation 0
      wal-0000000000000042.log      # records 42.. of generation 1
      snapshot-0000000000000041.bin # registry state through record 41

and provides the serve layer's whole durability surface:

* ``log_tenant`` / ``log_graph`` / ``log_update`` append one record to
  the WAL **before** the caller acks its client (ack-implies-durable
  under ``fsync=always``);
* ``snapshot`` serializes the live :class:`~repro.serve.tenancy.TenantRegistry`
  (every tenant's quota plus every engine's
  :meth:`~repro.engine.CutEngine.snapshot_state`), writes it with the
  verify-back discipline of :mod:`repro.durability.snapshot`, rotates
  the WAL to a fresh generation, and prunes superseded files under the
  retention policy — a snapshot that fails its own verification changes
  *nothing* (the old generation stays, counted under
  ``wal.snapshot_verify_failed``);
* ``recover`` restores the newest valid snapshot (falling back across
  corrupt ones), walks every remaining WAL file verifying sequence
  continuity and the chained fingerprint — including that the chain at
  the snapshot's position **matches the snapshot** — and replays the
  suffix through the real :meth:`CutEngine.update` path, exact-checking
  each replayed step's post-state (epoch, staleness, value, fingerprint)
  against the logged ledger.  Any mismatch raises a typed
  :class:`~repro.errors.RecoveryError`; the daemon refuses to boot.

Sequence numbers start at 1; record 0 does not exist (a fresh directory
recovers to ``seq == 0`` with the genesis chain).  All mutating entry
points take :attr:`lock` (an :class:`threading.RLock`), which the serve
layer also holds across ``engine.update(...) + log_update(...)`` so a
snapshot can never capture an engine whose latest update is missing
from the log.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import re
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import RecoveryError, UpdateVerificationError
from repro.graphs.graph import Graph
from repro.resilience.faults import FaultPlan
from repro.serve.tenancy import TenantQuota, TenantRegistry
from repro.durability import snapshot as snapmod
from repro.durability import wal as walmod

__all__ = ["GENESIS_CHAIN", "DurableState"]

#: the chained fingerprint before any record was ever written
GENESIS_CHAIN = hashlib.sha256(b"repro-durability-genesis").hexdigest()

_WAL_RE = re.compile(r"^wal-(\d{16})\.log$")


def _wal_path(state_dir: str, start_seq: int) -> str:
    return os.path.join(state_dir, f"wal-{int(start_seq):016d}.log")


def _list_wal_files(state_dir: str) -> List[Tuple[int, str]]:
    """``[(start_seq, path), ...]`` sorted by start_seq ascending."""
    found = []
    for name in os.listdir(state_dir):
        m = _WAL_RE.match(name)
        if m:
            found.append((int(m.group(1)), os.path.join(state_dir, name)))
    found.sort()
    return found


def _encode_update_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe spelling of :meth:`CutEngine.update` keywords."""
    data: Dict[str, Any] = {}
    if kwargs.get("add_edges") is not None:
        data["add_edges"] = [
            [int(u), int(v), float(w)] for (u, v, w) in kwargs["add_edges"]
        ]
    if kwargs.get("remove_edges") is not None:
        data["remove_edges"] = [int(i) for i in kwargs["remove_edges"]]
    if kwargs.get("reweight") is not None:
        rw = kwargs["reweight"]
        if isinstance(rw, dict):
            data["reweight"] = {str(int(k)): float(v) for k, v in rw.items()}
        else:
            data["reweight"] = [float(v) for v in rw]
    return data


def _decode_update_kwargs(data: Dict[str, Any]) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    if "add_edges" in data:
        kwargs["add_edges"] = [
            (int(u), int(v), float(w)) for (u, v, w) in data["add_edges"]
        ]
    if "remove_edges" in data:
        kwargs["remove_edges"] = [int(i) for i in data["remove_edges"]]
    if "reweight" in data:
        rw = data["reweight"]
        if isinstance(rw, dict):
            kwargs["reweight"] = {int(k): float(v) for k, v in rw.items()}
        else:
            kwargs["reweight"] = [float(v) for v in rw]
    return kwargs


class DurableState:
    """The serve daemon's durable spine over one state directory."""

    def __init__(
        self,
        state_dir: str,
        *,
        fsync: str = "always",
        snapshot_interval: int = 64,
        snapshot_retention: int = 2,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        if snapshot_retention < 1:
            raise ValueError("snapshot_retention must be >= 1")
        self.state_dir = os.path.abspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.fsync = fsync
        self.snapshot_interval = int(snapshot_interval)
        self.snapshot_retention = int(snapshot_retention)
        self.faults = faults
        self.lock = threading.RLock()
        self.registry: Optional[TenantRegistry] = None
        self._wal: Optional[walmod.WriteAheadLog] = None
        self._generation = 0
        self._since_snapshot = 0
        self._closed = False

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, registry: TenantRegistry) -> Dict[str, int]:
        """Restore ``registry`` from the state directory and open the
        WAL for appends.  Returns recovery stats (records seen/replayed,
        snapshot position).  Raises :class:`RecoveryError` — and leaves
        the directory untouched — rather than booting mismatched state.
        """
        with self.lock:
            reg = obs.counters()
            reg.add("recovery.runs")
            self.registry = registry
            # a crash between "write snapshot.tmp" and os.replace leaves
            # a .tmp sibling nothing references; sweep it so a kill can
            # never leak files across restarts
            for name in os.listdir(self.state_dir):
                if name.endswith(".tmp"):
                    os.unlink(os.path.join(self.state_dir, name))
            snap_seq, snap_chain, payload = self._load_newest_snapshot()
            if payload is not None:
                self._restore_registry(payload)
                reg.add("recovery.snapshots_loaded")
            stats = {
                "snapshot_seq": snap_seq,
                "records_seen": 0,
                "records_replayed": 0,
            }
            cur_seq, cur_chain = self._walk_wal(snap_seq, snap_chain, stats)
            if snap_seq > cur_seq:
                raise RecoveryError(
                    f"snapshot at seq {snap_seq} is beyond the end of the "
                    f"write-ahead log (last seq {cur_seq}); the log that "
                    "produced it is missing"
                )
            # boot onto a fresh generation: snapshot what we recovered
            # (so old generations become prunable) and rotate
            self._open_generation(cur_seq, cur_chain)
            if cur_seq > 0:
                self.snapshot()
            return stats

    def _load_newest_snapshot(
        self,
    ) -> Tuple[int, str, Optional[Dict[str, Any]]]:
        """Newest snapshot that verifies, falling back across bad ones."""
        for seq, path in reversed(snapmod.list_snapshots(self.state_dir)):
            try:
                state = snapmod.load_snapshot(path)
            except RecoveryError:
                obs.counters().add("recovery.snapshot_fallbacks")
                continue
            return int(state["seq"]), str(state["chain"]), dict(state["payload"])
        return 0, GENESIS_CHAIN, None

    def _walk_wal(
        self, snap_seq: int, snap_chain: str, stats: Dict[str, int]
    ) -> Tuple[int, str]:
        """Verify every WAL file's chain and replay the post-snapshot
        suffix; returns the final ``(seq, chain)``."""
        files = _list_wal_files(self.state_dir)
        if not files:
            return snap_seq, snap_chain
        reg = obs.counters()
        cur_seq: Optional[int] = None
        cur_chain = ""
        for i, (start_seq, path) in enumerate(files):
            size = os.path.getsize(path)
            try:
                header, records, valid_length = walmod.scan(path)
            except RecoveryError:
                # a crash during rotation can leave the *newest*
                # generation as a half-written magic/header with no
                # records in it; that debris is safe to drop.  Anything
                # else stays a hard error.
                if i == len(files) - 1 and walmod.torn_creation(path):
                    os.unlink(path)
                    reg.add("wal.truncated_tail")
                    break
                raise
            if valid_length < size:
                reg.add("wal.truncated_tail")
            h_start = int(header["start_seq"])
            h_chain = str(header["chain"])
            if h_start != start_seq:
                raise RecoveryError(
                    f"{path}: header start_seq {h_start} disagrees with "
                    f"the file name"
                )
            if cur_seq is None:
                # oldest remaining file: its header is the anchor.  If
                # it starts right after the snapshot, the header chain
                # must be the snapshot's chain; if it starts before,
                # the in-stream check at snap_seq will cross-verify.
                cur_seq, cur_chain = h_start - 1, h_chain
                if snap_seq + 1 == h_start and h_chain != snap_chain:
                    raise RecoveryError(
                        f"{path}: WAL generation chain {h_chain[:12]}... "
                        f"does not match the snapshot chain "
                        f"{snap_chain[:12]}... it claims to follow"
                    )
                if snap_seq < cur_seq:
                    raise RecoveryError(
                        f"{path}: oldest WAL file starts at seq {h_start} "
                        f"but the newest usable snapshot covers only seq "
                        f"{snap_seq}; records "
                        f"{snap_seq + 1}..{cur_seq} are lost"
                    )
            else:
                if h_start != cur_seq + 1 or h_chain != cur_chain:
                    raise RecoveryError(
                        f"{path}: WAL generation does not continue its "
                        f"predecessor (expected seq {cur_seq + 1} / chain "
                        f"{cur_chain[:12]}..., got {h_start} / "
                        f"{h_chain[:12]}...)"
                    )
            self._generation = max(self._generation, int(header.get("epoch", 0)))
            for rec in records:
                if rec.seq != cur_seq + 1:
                    raise RecoveryError(
                        f"{path}: sequence gap — expected seq "
                        f"{cur_seq + 1}, found {rec.seq}"
                    )
                cur_seq, cur_chain = rec.seq, rec.chain
                stats["records_seen"] += 1
                if rec.seq == snap_seq and cur_chain != snap_chain:
                    raise RecoveryError(
                        f"{path}: fingerprint chain at seq {snap_seq} "
                        f"({cur_chain[:12]}...) does not match the "
                        f"snapshot's chain ({snap_chain[:12]}...); "
                        "snapshot and log tell different histories"
                    )
                if rec.seq > snap_seq:
                    self._apply(rec)
                    stats["records_replayed"] += 1
                    reg.add("recovery.records_replayed")
        return (snap_seq, snap_chain) if cur_seq is None else (cur_seq, cur_chain)

    def _apply(self, rec: walmod.WalRecord) -> None:
        """Replay one logged record against the live registry."""
        assert self.registry is not None
        data = rec.data
        if rec.kind == "tenant":
            self.registry.register(
                str(data["name"]), TenantQuota(**dict(data["quota"]))
            )
            return
        if rec.kind == "graph":
            tenant = self.registry.get(str(data["tenant"]))
            graph = Graph.from_edges(
                int(data["n"]),
                [(int(u), int(v), float(w)) for (u, v, w) in data["edges"]],
            )
            tenant.register_graph(
                str(data["name"]),
                graph,
                seed=int(data["seed"]),
                epsilon=data.get("epsilon"),
            )
            return
        if rec.kind == "update":
            tenant = self.registry.get(str(data["tenant"]))
            engine, _lock = tenant.engine(str(data["graph"]))
            kwargs = _decode_update_kwargs(dict(data["kwargs"]))
            try:
                upd = engine.update(**kwargs)
            except UpdateVerificationError as exc:
                raise RecoveryError(
                    f"replay of seq {rec.seq} failed the live verification "
                    f"the original update passed: {exc}"
                ) from exc
            obs.counters().add("recovery.updates_replayed")
            post = dict(data["post"])
            got_fp = engine.fingerprint_chain()["current"]["fingerprint"]
            mismatches = []
            if int(upd.epoch) != int(post["epoch"]):
                mismatches.append(f"epoch {upd.epoch} != {post['epoch']}")
            if int(upd.staleness) != int(post["staleness"]):
                mismatches.append(
                    f"staleness {upd.staleness} != {post['staleness']}"
                )
            if float(upd.value) != float(post["value"]):
                mismatches.append(f"value {upd.value!r} != {post['value']!r}")
            if got_fp != post["fingerprint"]:
                mismatches.append(
                    f"fingerprint {str(got_fp)[:12]}... != "
                    f"{str(post['fingerprint'])[:12]}..."
                )
            if mismatches:
                raise RecoveryError(
                    f"replayed update at seq {rec.seq} diverged from the "
                    f"logged ledger: {'; '.join(mismatches)}"
                )
            return
        raise RecoveryError(f"unknown WAL record kind {rec.kind!r} at seq {rec.seq}")

    # ------------------------------------------------------------------
    # registry (de)serialization
    # ------------------------------------------------------------------
    def _registry_payload(self) -> Dict[str, Any]:
        assert self.registry is not None
        tenants: Dict[str, Any] = {}
        for name, tenant in self.registry.items():
            graphs = {
                gname: {
                    "params": dict(
                        tenant.graph_params.get(
                            gname, {"seed": 0, "epsilon": None}
                        )
                    ),
                    "engine": engine.snapshot_state(),
                }
                for gname, engine in tenant.engines.items()
            }
            tenants[name] = {
                "quota": dataclasses.asdict(tenant.quota),
                "graphs": graphs,
            }
        return {
            "default_budget_class": self.registry.default_budget_class,
            "tenants": tenants,
        }

    def _restore_registry(self, payload: Dict[str, Any]) -> None:
        assert self.registry is not None
        for name, tstate in dict(payload["tenants"]).items():
            tenant = self.registry.register(
                str(name), TenantQuota(**dict(tstate["quota"]))
            )
            for gname, gstate in dict(tstate["graphs"]).items():
                params = dict(gstate["params"])
                engine_state = dict(gstate["engine"])
                engine = tenant.register_graph(
                    str(gname),
                    engine_state["base_graph"],
                    seed=int(params.get("seed", 0)),
                    epsilon=params.get("epsilon"),
                )
                engine.restore_state(engine_state)

    # ------------------------------------------------------------------
    # logging (the serve layer's append surface)
    # ------------------------------------------------------------------
    def log_tenant(self, name: str, quota: TenantQuota) -> int:
        return self._log(
            "tenant", {"name": name, "quota": dataclasses.asdict(quota)}
        )

    def log_graph(
        self,
        tenant: str,
        name: str,
        graph: Graph,
        *,
        seed: int = 0,
        epsilon: Optional[float] = None,
    ) -> int:
        return self._log(
            "graph",
            {
                "tenant": tenant,
                "name": name,
                "n": int(graph.n),
                "edges": [[int(u), int(v), float(w)] for u, v, w in graph.edges()],
                "seed": int(seed),
                "epsilon": None if epsilon is None else float(epsilon),
            },
        )

    def log_update(
        self,
        tenant: str,
        graph: str,
        kwargs: Dict[str, Any],
        post: Dict[str, Any],
    ) -> int:
        """Log one applied, verified update and its post-state ledger
        (``post`` = epoch/staleness/value/fingerprint after the update).
        """
        return self._log(
            "update",
            {
                "tenant": tenant,
                "graph": graph,
                "kwargs": _encode_update_kwargs(kwargs),
                "post": {
                    "epoch": int(post["epoch"]),
                    "staleness": int(post["staleness"]),
                    "value": float(post["value"]),
                    "fingerprint": str(post["fingerprint"]),
                },
            },
        )

    def _log(self, kind: str, data: Dict[str, Any]) -> int:
        with self.lock:
            if self._wal is None:
                raise RecoveryError(
                    "DurableState has no open WAL (recover() not run, or "
                    "already closed)"
                )
            seq, _chain = self._wal.append(kind, data)
            self._since_snapshot += 1
            if self._since_snapshot >= self.snapshot_interval:
                self.snapshot()
            return seq

    # ------------------------------------------------------------------
    # snapshots and rotation
    # ------------------------------------------------------------------
    def snapshot(self) -> Optional[str]:
        """Snapshot the live registry at the WAL's current position,
        rotate to a fresh generation, and prune superseded files.

        Returns the snapshot path, or None if the written snapshot
        failed its verify-back — in which case nothing was rotated or
        pruned and the WAL keeps appending to the current generation.
        """
        with self.lock:
            if self._wal is None:
                raise RecoveryError("DurableState has no open WAL")
            if self.registry is None:
                raise RecoveryError("DurableState has no registry to snapshot")
            seq, chain = self._wal.next_seq - 1, self._wal.chain
            try:
                path = snapmod.write_snapshot(
                    self.state_dir,
                    seq=seq,
                    chain=chain,
                    payload=self._registry_payload(),
                    faults=self.faults,
                )
            except RecoveryError:
                # the unverified .tmp was discarded before promotion:
                # any existing snapshot at this seq is untouched, and
                # nothing may be rotated or pruned on its account
                obs.counters().add("wal.snapshot_verify_failed")
                self._since_snapshot = 0
                return None
            self._rotate(seq, chain)
            self._prune()
            self._since_snapshot = 0
            return path

    def _open_generation(self, seq: int, chain: str) -> None:
        """Open (or create) the WAL generation starting at ``seq + 1``."""
        path = _wal_path(self.state_dir, seq + 1)
        if os.path.exists(path):
            self._wal = walmod.WriteAheadLog.open_append(
                path, fsync=self.fsync, faults=self.faults
            )
            if self._wal.next_seq != seq + 1 or self._wal.chain != chain:
                raise RecoveryError(
                    f"{path}: reopened WAL position ({self._wal.next_seq}) "
                    f"disagrees with the recovered state ({seq + 1})"
                )
        else:
            self._generation += 1
            self._wal = walmod.WriteAheadLog.create(
                path,
                start_seq=seq + 1,
                chain=chain,
                epoch=self._generation,
                fsync=self.fsync,
                faults=self.faults,
            )

    def _rotate(self, seq: int, chain: str) -> None:
        assert self._wal is not None
        new_path = _wal_path(self.state_dir, seq + 1)
        if self._wal.path == new_path:
            return  # nothing appended since the generation opened
        self._wal.close()
        self._generation += 1
        self._wal = walmod.WriteAheadLog.create(
            new_path,
            start_seq=seq + 1,
            chain=chain,
            epoch=self._generation,
            fsync=self.fsync,
            faults=self.faults,
        )
        obs.counters().add("wal.rotations")

    def _prune(self) -> None:
        """Drop snapshots past retention and WAL files wholly covered by
        the oldest retained snapshot."""
        snaps = snapmod.list_snapshots(self.state_dir)
        keep = snaps[-self.snapshot_retention :]
        for _seq, path in snaps[: -self.snapshot_retention]:
            os.unlink(path)
        if not keep:
            return
        oldest_kept = keep[0][0]
        files = _list_wal_files(self.state_dir)
        for i, (start_seq, path) in enumerate(files):
            nxt = files[i + 1][0] if i + 1 < len(files) else None
            # a file is disposable only if the *next* generation starts
            # at or before the oldest retained snapshot's successor —
            # i.e. every record it holds is folded into that snapshot
            if nxt is not None and nxt <= oldest_kept + 1:
                os.unlink(path)

    # ------------------------------------------------------------------
    # lifecycle and introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Final snapshot (if anything was appended since the last one)
        and clean WAL close.  Idempotent."""
        with self.lock:
            if self._closed:
                return
            self._closed = True
            if self._wal is not None:
                if self._since_snapshot and self.registry is not None:
                    self.snapshot()
                if self._wal is not None:
                    self._wal.close()
                self._wal = None

    def abandon(self) -> None:
        """Drop the WAL fd without snapshotting — simulating a crash.
        The in-memory registry may be ahead of (or diverged from) disk;
        only :meth:`recover` on a fresh instance tells the truth."""
        with self.lock:
            self._closed = True
            if self._wal is not None:
                self._wal.abandon()
                self._wal = None

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, Any]:
        with self.lock:
            snaps = snapmod.list_snapshots(self.state_dir)
            return {
                "state_dir": self.state_dir,
                "fsync": self.fsync,
                "seq": (0 if self._wal is None else self._wal.next_seq - 1),
                "generation": self._generation,
                "snapshots": len(snaps),
                "wal_files": len(_list_wal_files(self.state_dir)),
                "since_snapshot": self._since_snapshot,
            }
