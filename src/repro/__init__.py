"""repro — Work-Optimal Parallel Minimum Cuts for Non-Sparse Graphs.

Reproduction of López-Martínez, Mukhopadhyay & Nanongkai (SPAA 2021).
See README.md for the tour and DESIGN.md for the system inventory.

Public API highlights
---------------------
- :func:`repro.minimum_cut` — the paper's exact parallel algorithm.
- :func:`repro.resilient_minimum_cut` — the same, behind budgets,
  verified retries, and a graceful-degradation fallback chain.
- :func:`repro.approximate_minimum_cut` — the Section 3 approximation.
- :class:`repro.CutEngine` — the staged/cached spelling of the exact
  pipeline for repeated queries over one graph (``min_cut()``,
  ``min_cut_batch(seeds)``, ``update(reweight=...)``), with artifacts in a
  :class:`repro.ArtifactCache` (:mod:`repro.engine`).
- :class:`repro.CutResult` / :class:`repro.ApproxResult` — the result
  values, with :class:`repro.VerificationReport` provenance.
- :class:`repro.CutPipelineParams` — the pipeline knobs, documented
  once (:mod:`repro.params`).
- :class:`repro.RunReport` — per-run observability (phase spans,
  counters, Chrome-trace export) from ``trace=True`` runs
  (:mod:`repro.obs`).
- :class:`repro.Graph` and the generators in :mod:`repro.graphs`.
- :class:`repro.Ledger` — PRAM work/depth accounting.
- :mod:`repro.arena` — every solver (the pipeline, the engine, the
  classical baselines) behind one :class:`repro.Contender` surface;
  :func:`repro.get_contender` / :func:`repro.contender_names` query
  the registry, results come back as :class:`repro.ArenaResult`.

All entry points take the graph positionally and everything else
keyword-only.
"""

from repro._version import __version__
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger

__all__ = [
    "__version__",
    "Graph",
    "Ledger",
    "minimum_cut",
    "resilient_minimum_cut",
    "approximate_minimum_cut",
    "two_respecting_min_cut",
    "CutEngine",
    "UpdateResult",
    "GraphDelta",
    "ArtifactCache",
    "CutResult",
    "ApproxResult",
    "VerificationReport",
    "DegradationEvent",
    "Supervisor",
    "RunReport",
    "CutPipelineParams",
    "SkeletonParams",
    "HierarchyParams",
    "ArenaResult",
    "Contender",
    "get_contender",
    "contender_names",
]

#: lazily-resolved re-exports: name -> (module, attribute)
_LAZY = {
    "minimum_cut": ("repro.core.mincut", "minimum_cut"),
    "resilient_minimum_cut": ("repro.resilience.driver", "resilient_minimum_cut"),
    "approximate_minimum_cut": ("repro.approx.approximate", "approximate_minimum_cut"),
    "two_respecting_min_cut": ("repro.tworespect.algorithm", "two_respecting_min_cut"),
    "CutEngine": ("repro.engine.service", "CutEngine"),
    "UpdateResult": ("repro.engine.deltas", "UpdateResult"),
    "GraphDelta": ("repro.engine.deltas", "GraphDelta"),
    "ArtifactCache": ("repro.engine.cache", "ArtifactCache"),
    "CutResult": ("repro.results", "CutResult"),
    "ApproxResult": ("repro.results", "ApproxResult"),
    "VerificationReport": ("repro.results", "VerificationReport"),
    "DegradationEvent": ("repro.results", "DegradationEvent"),
    "Supervisor": ("repro.resilience.supervisor", "Supervisor"),
    "RunReport": ("repro.obs.report", "RunReport"),
    "CutPipelineParams": ("repro.params", "CutPipelineParams"),
    "SkeletonParams": ("repro.sparsify.skeleton", "SkeletonParams"),
    "HierarchyParams": ("repro.sparsify.hierarchy", "HierarchyParams"),
    "ArenaResult": ("repro.arena.result", "ArenaResult"),
    "Contender": ("repro.arena.result", "Contender"),
    "get_contender": ("repro.arena.registry", "get_contender"),
    "contender_names": ("repro.arena.registry", "contender_names"),
}


def __getattr__(name: str):
    # Lazy re-exports keep `import repro` light and avoid import cycles
    # between the substrate and algorithm layers.
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target[0]), target[1])


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
