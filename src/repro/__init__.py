"""repro — Work-Optimal Parallel Minimum Cuts for Non-Sparse Graphs.

Reproduction of López-Martínez, Mukhopadhyay & Nanongkai (SPAA 2021).
See README.md for the tour and DESIGN.md for the system inventory.

Public API highlights
---------------------
- :func:`repro.minimum_cut` — the paper's exact parallel algorithm.
- :func:`repro.resilient_minimum_cut` — the same, behind budgets,
  verified retries, and a graceful-degradation fallback chain.
- :func:`repro.approximate_minimum_cut` — the Section 3 approximation.
- :class:`repro.Graph` and the generators in :mod:`repro.graphs`.
- :class:`repro.Ledger` — PRAM work/depth accounting.
"""

from repro._version import __version__
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger

__all__ = [
    "__version__",
    "Graph",
    "Ledger",
    "minimum_cut",
    "resilient_minimum_cut",
    "approximate_minimum_cut",
    "two_respecting_min_cut",
]


def __getattr__(name: str):
    # Lazy re-exports keep `import repro` light and avoid import cycles
    # between the substrate and algorithm layers.
    if name == "minimum_cut":
        from repro.core.mincut import minimum_cut

        return minimum_cut
    if name == "resilient_minimum_cut":
        from repro.resilience.driver import resilient_minimum_cut

        return resilient_minimum_cut
    if name == "approximate_minimum_cut":
        from repro.approx.approximate import approximate_minimum_cut

        return approximate_minimum_cut
    if name == "two_respecting_min_cut":
        from repro.tworespect.algorithm import two_respecting_min_cut

        return two_respecting_min_cut
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
