"""Result containers shared by the algorithm layers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class CutResult:
    """A cut of the input graph.

    Attributes
    ----------
    value:
        Total weight crossing the cut.
    side:
        Boolean mask over the graph's vertices (one side of the
        bipartition).  Always a proper nonempty subset for value-bearing
        results; for disconnected inputs it marks one component.
    witness_edges:
        Child endpoints ``(u, v)`` of the tree edges that the cut
        2-respects, when the cut was found through a tree (``u == v``
        for 1-respecting cuts); ``None`` for cuts found by other means
        (e.g. the Stoer–Wagner baseline).
    stats:
        Free-form diagnostics (work/depth snapshots, tree counts,
        oracle visit counters, ...).
    attempts:
        How many exact-pipeline attempts produced this result (1 for a
        direct :func:`repro.core.mincut.minimum_cut` call; > 1 when the
        resilient driver retried after a suspected w.h.p. failure).
    fallback_used:
        ``None`` when the exact pipeline produced the answer; otherwise
        the name of the graceful-degradation stage that did (currently
        ``"stoer_wagner"``).
    verification:
        The :class:`repro.resilience.verify.VerificationReport` of the
        returned answer, when the resilient driver verified it; ``None``
        for unverified (direct) runs.
    """

    value: float
    side: np.ndarray
    witness_edges: Optional[Tuple[int, int]] = None
    stats: Dict[str, float] = field(default_factory=dict)
    attempts: int = 1
    fallback_used: Optional[str] = None
    verification: Optional[object] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "side", np.asarray(self.side, dtype=bool))

    def partition(self) -> Tuple[np.ndarray, np.ndarray]:
        """The two vertex sets of the bipartition."""
        idx = np.arange(self.side.shape[0])
        return idx[self.side], idx[~self.side]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = int(self.side.sum())
        return f"CutResult(value={self.value:g}, sides=({k},{self.side.shape[0] - k}))"


@dataclass(frozen=True)
class ApproxResult:
    """Output of the Section 3 approximation algorithm.

    ``low <= lambda <= high`` holds w.h.p.; ``estimate`` is the centre
    of the bracket.  ``skeleton_layer`` is the located layer s with
    ``2^{-s} ~ p_s`` (Definition 3.5).
    """

    estimate: float
    low: float
    high: float
    skeleton_layer: int
    layer_cuts: Dict[int, float] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ApproxResult(estimate={self.estimate:g}, "
            f"bracket=[{self.low:g}, {self.high:g}], layer={self.skeleton_layer})"
        )
