"""Result containers shared by the algorithm layers.

All three entry points return these types:

* :func:`repro.minimum_cut` / :func:`repro.resilient_minimum_cut` →
  :class:`CutResult` (the resilient driver also fills the provenance
  fields ``attempts`` / ``fallback_used`` / ``verification``);
* :func:`repro.approximate_minimum_cut` → :class:`ApproxResult`.

``trace=True`` runs additionally attach a
:class:`repro.obs.RunReport` as ``.report``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.report import RunReport

__all__ = ["CutResult", "ApproxResult", "VerificationReport", "DegradationEvent"]


@dataclass(frozen=True)
class DegradationEvent:
    """One health-driven executor-backend degradation, recorded by
    :class:`repro.resilience.supervisor.Supervisor` and carried on
    :attr:`CutResult.degradations`.

    Attributes
    ----------
    backend_from:
        The backend the caller asked for (e.g. ``"process"``).
    backend_to:
        The healthy backend the supervisor routed to instead (further
        down the ``process → thread → sync`` chain).
    reason:
        Why ``backend_from`` was unhealthy: ``"broken_pool"``,
        ``"timeout"``, or the generic ``"backoff"``.
    at:
        Supervisor-clock timestamp (monotonic seconds) of the decision.
    detail:
        Free-form context (best effort).
    """

    backend_from: str
    backend_to: str
    reason: str
    at: float
    detail: str = ""


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of :func:`repro.resilience.verify.verify_cut`.

    ``checks`` lists ``(name, passed)`` in execution order; ``ok`` is
    their conjunction.  ``detail`` explains the first failure.
    """

    ok: bool
    checks: Tuple[Tuple[str, bool], ...] = ()
    detail: str = ""
    #: tightest cheap upper bound the checks computed (min degree /
    #: 1-respecting / Stoer-Wagner value), for diagnostics
    upper_bound: float = math.inf

    def passed(self, name: str) -> Optional[bool]:
        """Result of one named check, or None if it did not run."""
        for n, p in self.checks:
            if n == name:
                return p
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ran = " ".join(f"{n}={'ok' if p else 'FAIL'}" for n, p in self.checks)
        return f"VerificationReport(ok={self.ok}, {ran})"


@dataclass(frozen=True)
class CutResult:
    """A cut of the input graph.

    Attributes
    ----------
    value:
        Total weight crossing the cut.
    side:
        Boolean mask over the graph's vertices (one side of the
        bipartition).  Always a proper nonempty subset for value-bearing
        results; for disconnected inputs it marks one component.
    witness_edges:
        Child endpoints ``(u, v)`` of the tree edges that the cut
        2-respects, when the cut was found through a tree (``u == v``
        for 1-respecting cuts); ``None`` for cuts found by other means
        (e.g. the Stoer–Wagner baseline).
    stats:
        Diagnostics (work/depth snapshots, tree counts, oracle visit
        counters, ...).  Exposed as a **read-only** mapping — the
        result is a frozen value object; richer run diagnostics live on
        ``report`` and the :mod:`repro.obs` counter registry.
    attempts:
        How many exact-pipeline attempts produced this result (1 for a
        direct :func:`repro.core.mincut.minimum_cut` call; > 1 when the
        resilient driver retried after a suspected w.h.p. failure).
    fallback_used:
        ``None`` when the exact pipeline produced the answer; otherwise
        the name of the graceful-degradation stage that did (currently
        ``"stoer_wagner"``).
    verification:
        The :class:`VerificationReport` of the returned answer, when the
        resilient driver verified it; ``None`` for unverified (direct)
        runs.
    degradations:
        Typed :class:`DegradationEvent` records of every health-driven
        executor-backend downgrade the supervisor performed during the
        run; empty for direct runs and healthy resilient runs.
    report:
        The :class:`repro.obs.RunReport` of a ``trace=True`` run
        (phase spans, counters, trace export); ``None`` otherwise.
    """

    value: float
    side: np.ndarray
    witness_edges: Optional[Tuple[int, int]] = None
    stats: Mapping[str, float] = field(default_factory=dict)
    attempts: int = 1
    fallback_used: Optional[str] = None
    verification: Optional[VerificationReport] = None
    degradations: Tuple[DegradationEvent, ...] = ()
    report: Optional["RunReport"] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "side", np.asarray(self.side, dtype=bool))
        object.__setattr__(self, "stats", MappingProxyType(dict(self.stats)))

    def partition(self) -> Tuple[np.ndarray, np.ndarray]:
        """The two vertex sets of the bipartition."""
        idx = np.arange(self.side.shape[0])
        return idx[self.side], idx[~self.side]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = int(self.side.sum())
        return f"CutResult(value={self.value:g}, sides=({k},{self.side.shape[0] - k}))"


@dataclass(frozen=True)
class ApproxResult:
    """Output of the Section 3 approximation algorithm.

    ``low <= lambda <= high`` holds w.h.p.; ``estimate`` is the centre
    of the bracket.  ``skeleton_layer`` is the located layer s with
    ``2^{-s} ~ p_s`` (Definition 3.5).  ``stats`` is read-only, like
    :attr:`CutResult.stats`; ``report`` is the ``trace=True`` run
    report.
    """

    estimate: float
    low: float
    high: float
    skeleton_layer: int
    layer_cuts: Dict[int, float] = field(default_factory=dict)
    stats: Mapping[str, float] = field(default_factory=dict)
    report: Optional["RunReport"] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "stats", MappingProxyType(dict(self.stats)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ApproxResult(estimate={self.estimate:g}, "
            f"bracket=[{self.low:g}, {self.high:g}], layer={self.skeleton_layer})"
        )
