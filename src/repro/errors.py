"""Exception types shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when a graph input is malformed (bad shapes, negative weights,
    self loops where disallowed, …)."""


class NotConnectedError(ReproError):
    """Raised by routines that require a connected input graph."""


class IntegerWeightsRequired(ReproError):
    """Raised by the multigraph / sampled-hierarchy machinery (Section 3 of
    the paper), which interprets a weight-w edge as w unweighted parallel
    copies and therefore needs integral weights."""


class LedgerError(ReproError):
    """Raised on misuse of the work-depth ledger (e.g. closing a parallel
    frame that still has an open branch)."""


class MongeViolation(ReproError):
    """Raised by the Monge-property verifiers when a matrix that is supposed
    to satisfy the (inverse-)Monge condition does not.  Primarily used in
    tests; the production search routines never raise this."""
