"""Exception types shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when a graph input is malformed (bad shapes, negative weights,
    self loops where disallowed, …)."""


class InvalidParameterError(ReproError):
    """Raised when a non-graph algorithm parameter (epsilon, attempt
    counts, budget values, …) is out of its valid range."""


class BudgetExceeded(ReproError):
    """Raised at a cooperative cancellation checkpoint once the active
    :class:`repro.resilience.Budget` has run out of wall-clock time or
    ledger work.

    Attributes
    ----------
    reason:
        Which resource ran out: ``"deadline"``, ``"work"``, or
        ``"injected"`` (a fault-plan blowout).
    site:
        The checkpoint site that observed the exhaustion (best effort).
    """

    def __init__(self, message: str, *, reason: str = "deadline", site: str = "") -> None:
        super().__init__(message)
        self.reason = reason
        self.site = site


class FaultInjected(ReproError):
    """Raised by :mod:`repro.resilience.faults` when a deterministic fault
    plan fires an error-type fault (e.g. inside an executor branch)."""


class CheckpointError(ReproError):
    """Raised by :mod:`repro.resilience.checkpointing` when a checkpoint
    file cannot be used: unreadable bytes, unknown format version, a
    content-hash mismatch (corruption), or a fingerprint that does not
    match the graph/seed/parameters of the resuming run."""


class SimulatedCrash(ReproError):
    """Raised by the ``checkpoint.kill`` fault site immediately after a
    checkpoint save, simulating an abrupt process death at a persisted
    point.  Used by the kill/resume tests and ``scripts/chaos_soak.py``
    to prove that a resumed run reproduces the uninterrupted result."""


class RecoveryError(ReproError):
    """Raised by :mod:`repro.durability` when persisted state cannot be
    restored faithfully: a snapshot whose fingerprint chain does not
    match the write-ahead log it is paired with, a replayed update whose
    post-state (value, epoch, fingerprint) diverges from the logged
    ledger, a sequence gap in the log, or an engine snapshot that fails
    its recomputed-fingerprint check.  Recovery refuses to boot a
    chimera rather than serve answers about a graph nobody built."""


class WalCorruptionError(RecoveryError):
    """Raised when a write-ahead log contains a corrupted record that is
    *not* the final one (a CRC32 mismatch followed by further valid
    records).  A torn final record is expected after a crash and is
    truncated silently; corruption mid-log means bit rot or tampering
    and is never skipped."""


class UpdateVerificationError(ReproError):
    """Raised by :meth:`repro.engine.CutEngine.update` when the
    post-update cut fails :func:`repro.resilience.verify.verify_cut`
    even after seed-escalated rebase retries — the engine refuses to
    hand back an answer its own certificates reject."""


class BranchErrors(ReproError):
    """Aggregate of every failure collected by a hardened
    :func:`repro.pram.executor.parallel_map` run.

    Attributes
    ----------
    failures:
        ``[(item_index, exception), ...]`` — every branch that still
        failed after its per-item retries, in item order.
    """

    def __init__(self, failures) -> None:
        self.failures = list(failures)
        lines = ", ".join(f"[{i}] {type(e).__name__}: {e}" for i, e in self.failures)
        super().__init__(f"{len(self.failures)} parallel branch(es) failed: {lines}")


class NotConnectedError(ReproError):
    """Raised by routines that require a connected input graph."""


class IntegerWeightsRequired(ReproError):
    """Raised by the multigraph / sampled-hierarchy machinery (Section 3 of
    the paper), which interprets a weight-w edge as w unweighted parallel
    copies and therefore needs integral weights."""


class LedgerError(ReproError):
    """Raised on misuse of the work-depth ledger (e.g. closing a parallel
    frame that still has an open branch)."""


class MongeViolation(ReproError):
    """Raised by the Monge-property verifiers when a matrix that is supposed
    to satisfy the (inverse-)Monge condition does not.  Primarily used in
    tests; the production search routines never raise this."""
