"""The Root-paths data structure of Lemma 4.5.

Given a descending-path decomposition, ``Root-paths(u)`` returns the ids
of the O(log n) decomposition paths that intersect the route from the
root down to ``u``.  The implementation follows the paper's query
verbatim: start at the path containing u's edge, jump to that path's
shallowest edge ``A[i][0]``, then continue from its parent's edge,
charging O(1) per path found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import RootedTree
from repro.trees.paths import PathDecomposition

__all__ = ["RootPaths"]


@dataclass(frozen=True)
class RootPaths:
    """Preprocessed Root-paths queries over one tree + decomposition.

    Preprocessing cost (charged at construction by the decomposition
    itself, Lemma 4.4): the structure here only aliases the
    decomposition's arrays, the paper's "sort each bough by postorder"
    step being implicit in our top-down path ordering.
    """

    tree: RootedTree
    decomposition: PathDecomposition

    @classmethod
    def build(
        cls,
        tree: RootedTree,
        decomposition: PathDecomposition,
        ledger: Ledger = NULL_LEDGER,
    ) -> "RootPaths":
        n = tree.n
        # Lemma 4.5 preprocessing budget: O(n log n) work, O(log^2 n) depth
        ledger.charge(
            work=float(n * max(log2ceil(max(n, 2)), 1)),
            depth=float(log2ceil(max(n, 2)) ** 2),
        )
        return cls(tree=tree, decomposition=decomposition)

    def query(self, u: int, ledger: Ledger = NULL_LEDGER) -> List[int]:
        """Ids of the decomposition paths met on the root -> u route,
        ordered from u upward to the root.

        O(log n) work and depth per Property 4.3 (charged structurally:
        one unit per path found).
        """
        out: List[int] = []
        dec, tree = self.decomposition, self.tree
        x = int(u)
        steps = 0
        while True:
            if tree.parent[x] < 0:  # reached the root
                break
            pid = int(dec.path_of[x])
            out.append(pid)
            steps += 1
            head = dec.head(pid)  # shallowest edge of this path
            x = int(tree.parent[head])
        ledger.charge(work=float(max(steps, 1)), depth=float(max(steps, 1)))
        return out
