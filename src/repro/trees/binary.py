"""Tree binarization (Section 4.1.3).

"Without loss of generality, we can assume that the input tree T is a
binary tree.  Otherwise, simply replace a node of degree d with a binary
tree of size O(d)" — the centroid search needs bounded degree so that
each centroid probes O(1) incident edges.

We binarize *top-down on parent arrays*: a vertex with k > 2 children
gets a balanced binary gadget of virtual vertices; real vertices keep
their ids ``0..n-1`` and virtual vertices get ids ``n..n_b-1``.  Graph
edges only ever attach to real vertices, so in the binarized tree's
postorder the virtual vertices simply never occur as 2-D points — every
subtree (real or virtual) is still a contiguous postorder range, which
is all the cut-query layer (Lemma A.1) needs.

Soundness of running the whole 2-respecting search on the binarized tree
T_b instead of T: removing any two edges of T_b induces a bipartition of
the *real* vertices, i.e. a genuine cut of G, so every value the search
inspects is attainable (never underestimates); and both edges of the
true minimum 2-respecting pair of T exist in T_b with identical subtrees
over real vertices, so the search never misses it.  (Virtual edges can
only expose *additional* cuts, e.g. "a group of siblings vs. the rest",
which is harmless.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = ["BinarizedTree", "binarize_parent"]


@dataclass(frozen=True)
class BinarizedTree:
    """Result of :func:`binarize_parent`.

    Attributes
    ----------
    parent:
        Parent array of the binarized tree (length ``n_b``); entries
        ``0..n_real-1`` are the original vertices.
    n_real:
        Number of original vertices.
    """

    parent: np.ndarray
    n_real: int

    @property
    def n(self) -> int:
        return int(self.parent.shape[0])

    def is_virtual(self, x: int) -> bool:
        return x >= self.n_real


def _balanced_group(
    parent: List[int], owner: int, members: List[int], next_id: List[int]
) -> None:
    """Attach ``members`` under ``owner`` through a balanced binary gadget.

    Recursively splits the member list in half; groups of size > 2 get a
    fresh virtual vertex.  Gadget depth is O(log k).
    """
    k = len(members)
    if k <= 2:
        for x in members:
            parent[x] = owner
        return
    mid = k // 2
    for half in (members[:mid], members[mid:]):
        if len(half) == 1:
            parent[half[0]] = owner
        else:
            vid = next_id[0]
            next_id[0] += 1
            parent.append(owner)  # parent[vid] = owner
            assert len(parent) == vid + 1
            _balanced_group(parent, vid, half, next_id)


def binarize_parent(
    parent: np.ndarray, ledger: Ledger = NULL_LEDGER
) -> BinarizedTree:
    """Binarize a rooted tree given as a parent array.

    Work O(n), depth O(log d_max) charged (each gadget builds bottom-up
    independently in parallel, per the paper's remark).
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = int(parent.shape[0])
    children: List[List[int]] = [[] for _ in range(n)]
    for x in range(n):
        p = int(parent[x])
        if p >= 0:
            children[p].append(x)
    out: List[int] = [-1] * n
    for x in range(n):
        p = int(parent[x])
        out[x] = p
    next_id = [n]
    max_deg = 1
    for x in range(n):
        kids = children[x]
        if len(kids) > max_deg:
            max_deg = len(kids)
        if len(kids) > 2:
            _balanced_group(out, x, kids, next_id)
    ledger.charge(work=float(len(out)), depth=float(log2ceil(max(max_deg, 2))))
    result = np.asarray(out, dtype=np.int64)
    return BinarizedTree(parent=result, n_real=n)
