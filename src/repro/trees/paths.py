"""Descending-path decompositions of a rooted tree (Section 4.1.1).

The 2-respecting search decomposes the spanning tree into edge-disjoint
*descending* paths such that (Property 4.3) any root-to-leaf path
intersects O(log n) of them.  Two constructions are provided:

* :func:`heavy_path_decomposition` — the classical deterministic
  decomposition (each vertex's edge to its heaviest-subtree child
  continues the path).  A root-to-leaf path switches paths only when
  subtree size at least halves, so it meets at most ``log2 n`` paths.
  This is the default used by the algorithm layer.
* :func:`bough_decomposition` — the peeling construction behind
  [GG18, Lemma 7]: repeatedly strip *boughs* (maximal pendant chains
  ending in leaves); each round at least halves the number of leaves,
  so there are O(log n) rounds and a root-to-leaf path gains at most
  one path per round.

Both satisfy Property 4.3; tests assert it for both.  Edges are named by
their child endpoint throughout (as in :mod:`repro.primitives.euler`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import GraphFormatError
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import RootedTree

__all__ = [
    "PathDecomposition",
    "heavy_path_decomposition",
    "bough_decomposition",
    "max_paths_on_root_leaf_route",
]


@dataclass(frozen=True)
class PathDecomposition:
    """Edge-disjoint descending paths covering all tree edges.

    Attributes
    ----------
    paths:
        ``paths[i]`` is an int64 array of *child endpoints*, ordered from
        the shallowest edge to the deepest (``A[i][0]`` is "the edge
        closest to the root" in the paper's notation).
    path_of:
        For every vertex u, the id of the path containing edge
        ``(u, parent(u))``; -1 for the root.
    index_in_path:
        Position of u's edge inside its path; -1 for the root.
    """

    paths: List[np.ndarray]
    path_of: np.ndarray
    index_in_path: np.ndarray

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def head(self, pid: int) -> int:
        """Child endpoint of path pid's shallowest edge (``A[i][0]``)."""
        return int(self.paths[pid][0])

    def validate(self, tree: RootedTree) -> None:
        """Invariant checks: edge-disjoint cover, descending order."""
        seen = np.zeros(tree.n, dtype=bool)
        for pid, arr in enumerate(self.paths):
            if arr.size == 0:
                raise GraphFormatError("empty path in decomposition")
            prev = None
            for u in arr:
                u = int(u)
                if tree.parent[u] < 0:
                    raise GraphFormatError("root has no edge")
                if seen[u]:
                    raise GraphFormatError("edge covered twice")
                seen[u] = True
                if self.path_of[u] != pid or self.index_in_path[u] != np.where(arr == u)[0][0]:
                    raise GraphFormatError("inverse maps inconsistent")
                if prev is not None and int(tree.parent[u]) != prev:
                    raise GraphFormatError("path is not a descending chain")
                prev = u
        uncovered = (~seen) & (tree.parent >= 0)
        if uncovered.any():
            raise GraphFormatError("decomposition does not cover all edges")


def _build_from_path_lists(
    n: int, chains: List[List[int]]
) -> PathDecomposition:
    path_of = np.full(n, -1, dtype=np.int64)
    index_in_path = np.full(n, -1, dtype=np.int64)
    arrays: List[np.ndarray] = []
    for pid, chain in enumerate(chains):
        arr = np.asarray(chain, dtype=np.int64)
        arrays.append(arr)
        path_of[arr] = pid
        index_in_path[arr] = np.arange(arr.shape[0])
    return PathDecomposition(paths=arrays, path_of=path_of, index_in_path=index_in_path)


def heavy_path_decomposition(
    tree: RootedTree, ledger: Ledger = NULL_LEDGER
) -> PathDecomposition:
    """Heavy-path decomposition (deterministic Property 4.3 witness).

    Charged at the cost the paper books for Lemma 4.4: O(n log n) work
    and O(log^2 n) depth (our construction is actually O(n) work; we
    charge the paper's model cost so phase totals remain comparable).
    """
    n = tree.n
    heavy_child = np.full(n, -1, dtype=np.int64)
    best = np.zeros(n, dtype=np.int64)
    # choose per-vertex the child with the largest subtree (ties: smaller id
    # via reversed scan order below)
    for u in range(n):
        p = int(tree.parent[u])
        if p >= 0 and (tree.size[u] > best[p] or (tree.size[u] == best[p] and (heavy_child[p] < 0 or u < heavy_child[p]))):
            best[p] = tree.size[u]
            heavy_child[p] = u
    chains: List[List[int]] = []
    for u in range(n):
        p = int(tree.parent[u])
        if p < 0:
            continue
        if heavy_child[p] == u:
            continue  # u's edge extends p's chain; emitted with its head
        # u starts a new chain: follow heavy children downward
        chain = [u]
        x = u
        while heavy_child[x] >= 0:
            x = int(heavy_child[x])
            chain.append(x)
        chains.append(chain)
    # also the chain starting at the root's heavy child
    r = tree.root
    if heavy_child[r] >= 0:
        chain = []
        x = r
        while heavy_child[x] >= 0:
            x = int(heavy_child[x])
            chain.append(x)
        chains.append(chain)
    ledger.charge(work=float(n * max(log2ceil(max(n, 2)), 1)), depth=float(log2ceil(max(n, 2)) ** 2))
    return _build_from_path_lists(n, chains)


def bough_decomposition(
    tree: RootedTree, ledger: Ledger = NULL_LEDGER
) -> PathDecomposition:
    """GG18-style bough peeling.

    Round k strips every maximal pendant chain (a path of vertices whose
    every vertex has exactly one live child below it, ending at a live
    leaf).  Rounds are charged O(n_live) work, O(log n) depth each.
    """
    n = tree.n
    alive = np.ones(n, dtype=bool)
    chains: List[List[int]] = []
    live_children = np.zeros(n, dtype=np.int64)
    for u in range(n):
        if tree.parent[u] >= 0:
            live_children[tree.parent[u]] += 1
    remaining = n - 1  # edges left
    while remaining > 0:
        # leaves of the live tree (non-root, no live children)
        leaves = [
            u
            for u in range(n)
            if alive[u] and u != tree.root and live_children[u] == 0
        ]
        stripped = 0
        for leaf in leaves:
            if not alive[leaf]:
                continue  # already absorbed into another bough this round
            # climb while the parent has exactly one live child and is not root
            chain_rev = [leaf]
            x = leaf
            while True:
                p = int(tree.parent[x])
                if p == tree.root or p < 0:
                    break
                if live_children[p] != 1 or not alive[p]:
                    break
                gp = int(tree.parent[p])
                if gp < 0:
                    break
                chain_rev.append(p)
                x = p
            chain = chain_rev[::-1]
            for u in chain:
                alive[u] = False
                live_children[int(tree.parent[u])] -= 1
            stripped += len(chain)
            chains.append(chain)
        remaining -= stripped
        ledger.charge(work=float(max(stripped, 1)), depth=float(log2ceil(max(n, 2))))
        if stripped == 0:  # pragma: no cover - safety against malformed trees
            raise GraphFormatError("bough peeling made no progress")
    return _build_from_path_lists(n, chains)


def max_paths_on_root_leaf_route(
    tree: RootedTree, decomposition: PathDecomposition
) -> int:
    """The Property 4.3 statistic: the max number of distinct paths met
    on any root-to-leaf route (tests assert it is O(log n))."""
    n = tree.n
    count = np.zeros(n, dtype=np.int64)
    # process vertices in reverse postorder so parents come first
    for u in tree.order[::-1]:
        u = int(u)
        p = int(tree.parent[u])
        if p < 0:
            continue
        if p == tree.root or decomposition.path_of[u] != decomposition.path_of[p]:
            base = count[p]
            count[u] = base + 1
        else:
            count[u] = count[p]
    return int(count.max()) if n else 0
