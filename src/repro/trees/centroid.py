"""Centroid decomposition and the interest-path search (Lemma 4.12,
Claim 4.13).

The decomposition recursively removes a *centroid* (a vertex whose
removal leaves components of size <= |T|/2), producing a centroid tree
of depth O(log n).  The 2-respecting algorithm uses it to locate, for
every tree edge e, the terminal nodes c_e / d_e of e's cross- and
down-interest paths (Claim 4.8) with O(log n) *oracle probes* per edge.

The search is phrased generically in :func:`deepest_on_interest_path`:
given the top vertex of a root-ward-anchored descending path P and a
membership oracle ``member(x)`` ("is the edge (x, p(x)) on P?" —
well-defined by Claim 4.8's contiguity), find P's deepest node.  The
case analysis at each centroid c relies only on P being a descending
path starting at ``top``:

* ``member(c)`` true  -> the answer is c or in the subtree of the unique
  member child (probe the <=2 children — the tree is binarized);
* ``member(c)`` false -> the answer avoids T_c entirely when c is below
  top, so move toward ``top``: into the child component containing top
  when c is a proper ancestor of top, else into the parent-side
  component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import RootedTree

__all__ = ["CentroidDecomposition", "centroid_decomposition", "deepest_on_interest_path"]


@dataclass(frozen=True)
class CentroidDecomposition:
    """Centroid tree over the vertices of a rooted tree.

    Attributes
    ----------
    cent_parent:
        Parent of each vertex in the *centroid tree* (-1 for the global
        centroid root).
    cent_depth:
        Depth in the centroid tree (root = 0); max depth is O(log n).
    cent_root:
        The global centroid.
    """

    cent_parent: np.ndarray
    cent_depth: np.ndarray
    cent_root: int

    @property
    def n(self) -> int:
        return int(self.cent_parent.shape[0])

    @property
    def height(self) -> int:
        return int(self.cent_depth.max()) + 1 if self.n else 0

    def child_component_toward(self, c: int, y: int) -> int:
        """The centroid-tree child of ``c`` whose component contains
        ``y`` (requires ``y`` to lie strictly inside c's component)."""
        x = int(y)
        while self.cent_parent[x] != c:
            x = int(self.cent_parent[x])
            if x < 0:
                raise GraphFormatError("target vertex is not in the centroid's component")
        return x


def centroid_decomposition(
    tree: RootedTree, ledger: Ledger = NULL_LEDGER
) -> CentroidDecomposition:
    """Decompose ``tree`` (any degrees) into a centroid tree.

    Charged at Lemma 4.12's cost: O(n log n) work, O(log n) depth.  The
    construction itself is the standard sequential O(n log n): per
    component, compute sizes by a local traversal, walk to the centroid,
    split, recurse (iteratively, via an explicit stack).
    """
    n = tree.n
    cent_parent = np.full(n, -1, dtype=np.int64)
    cent_depth = np.zeros(n, dtype=np.int64)
    if n == 0:
        return CentroidDecomposition(cent_parent, cent_depth, -1)
    # undirected adjacency from the parent array
    offsets, nbrs = _undirected_adjacency(tree.parent)
    removed = np.zeros(n, dtype=bool)
    size = np.zeros(n, dtype=np.int64)
    cent_root = -1
    stack: List[Tuple[int, int, int]] = [(tree.root, -1, 0)]  # (seed, cparent, cdepth)
    total_work = 0
    while stack:
        seed, cpar, cdep = stack.pop()
        comp = _collect_component(seed, offsets, nbrs, removed)
        _component_sizes(comp, offsets, nbrs, removed, size)
        c = _find_centroid(comp[0], len(comp), offsets, nbrs, removed, size)
        total_work += len(comp)
        cent_parent[c] = cpar
        cent_depth[c] = cdep
        if cpar < 0:
            cent_root = c
        removed[c] = True
        for j in range(offsets[c], offsets[c + 1]):
            y = int(nbrs[j])
            if not removed[y]:
                stack.append((y, c, cdep + 1))
    ledger.charge(work=float(total_work), depth=float(log2ceil(max(n, 2))))
    return CentroidDecomposition(cent_parent, cent_depth, cent_root)


def _undirected_adjacency(parent: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    n = parent.shape[0]
    child = np.flatnonzero(parent >= 0)
    ends = np.concatenate([child, parent[child]])
    other = np.concatenate([parent[child], child])
    order = np.argsort(ends, kind="stable")
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(offsets, ends[order] + 1, 1)
    np.cumsum(offsets, out=offsets)
    return offsets, other[order]


def _collect_component(
    seed: int, offsets: np.ndarray, nbrs: np.ndarray, removed: np.ndarray
) -> List[int]:
    comp = [int(seed)]
    seen = {int(seed)}
    i = 0
    while i < len(comp):
        x = comp[i]
        i += 1
        for j in range(offsets[x], offsets[x + 1]):
            y = int(nbrs[j])
            if not removed[y] and y not in seen:
                seen.add(y)
                comp.append(y)
    return comp


def _component_sizes(
    comp: List[int],
    offsets: np.ndarray,
    nbrs: np.ndarray,
    removed: np.ndarray,
    size: np.ndarray,
) -> None:
    """Subtree sizes of the component rooted at comp[0] (DFS order trick:
    comp is BFS order from the seed, so reversed iteration accumulates)."""
    # rebuild as DFS from seed with explicit parent-in-component
    seed = comp[0]
    parent_in = {seed: -1}
    order: List[int] = [seed]
    i = 0
    while i < len(order):
        x = order[i]
        i += 1
        for j in range(offsets[x], offsets[x + 1]):
            y = int(nbrs[j])
            if not removed[y] and y not in parent_in:
                parent_in[y] = x
                order.append(y)
    for x in order:
        size[x] = 1
    for x in reversed(order):
        p = parent_in[x]
        if p >= 0:
            size[p] += size[x]


def _find_centroid(
    seed: int,
    comp_size: int,
    offsets: np.ndarray,
    nbrs: np.ndarray,
    removed: np.ndarray,
    size: np.ndarray,
) -> int:
    """Walk from the seed toward the heavy side until balanced.

    ``size`` holds seed-rooted subtree sizes, under which a neighbor y is
    a child of x iff ``size[y] < size[x]`` (strict in a tree); the parent
    side then weighs ``comp_size - size[x]``.
    """
    x = int(seed)
    while True:
        heavy = -1
        heavy_size = 0
        for j in range(offsets[x], offsets[x + 1]):
            y = int(nbrs[j])
            if removed[y]:
                continue
            s = int(size[y]) if size[y] < size[x] else comp_size - int(size[x])
            if s > heavy_size:
                heavy_size = s
                heavy = y
        if heavy_size * 2 <= comp_size:
            return x
        x = heavy


def deepest_on_interest_path(
    tree: RootedTree,
    cd: CentroidDecomposition,
    top: int,
    member: Callable[[int], bool],
    ledger: Ledger = NULL_LEDGER,
) -> int:
    """Deepest node of the descending path P anchored at ``top``.

    ``member(x)`` answers "is x on P" for any vertex x (by Claim 4.8
    membership is intrinsic: x is on P iff e is interested in the edge
    (x, p(x)); ``member(top)`` must be True).  Returns the deepest node
    of P.  Probes O(log n) membership queries (charged by the member
    callback itself); navigation uses centroid-parent walks, charged
    O(log n) work per level.
    """
    c = cd.cent_root
    levels = 0
    while True:
        levels += 1
        if levels > cd.height + 2:  # pragma: no cover - safety net
            raise GraphFormatError("centroid search failed to converge")
        if c == top or (tree.is_ancestor(top, c) and member(c)):
            # c is on P; does P continue into a child of c?
            nxt = -1
            for ch in _tree_children(tree, c):
                # a continuation child must be inside c's current
                # centroid component; if it is not, P cannot continue
                # there while the answer stays in the component.
                if member(ch):
                    nxt = ch
                    break
            if nxt < 0:
                return c
            c = cd.child_component_toward(c, nxt)
            ledger.charge(work=float(log2ceil(max(tree.n, 2)) + 1), depth=1.0)
            continue
        # c is not on P: move toward `top`
        if tree.is_ancestor(c, top) and c != top:
            # proper ancestor: descend toward the child holding `top`
            step = _tree_child_toward(tree, c, top)
            c = cd.child_component_toward(c, step)
        else:
            # c below or unrelated to top: the answer avoids T_c; go to
            # the parent-side component
            p = int(tree.parent[c])
            if p < 0:  # pragma: no cover - c can only be the root if top is too
                return top
            c = cd.child_component_toward(c, p)
        ledger.charge(work=float(log2ceil(max(tree.n, 2)) + 1), depth=1.0)


_children_cache_key = "_repro_children_cache"


def _tree_children(tree: RootedTree, x: int) -> List[int]:
    cache = getattr(tree, _children_cache_key, None)
    if cache is None:
        cache = tree.children_lists()
        object.__setattr__(tree, _children_cache_key, cache)
    return cache[x]


def _tree_child_toward(tree: RootedTree, anc: int, target: int) -> int:
    """The child of ``anc`` whose subtree contains ``target``."""
    for ch in _tree_children(tree, anc):
        if tree.is_ancestor(ch, target):
            return ch
    raise GraphFormatError("target not under ancestor")
