"""Rooted-tree machinery: binarization, path decompositions, Root-paths,
centroid decomposition and the interest-path search."""

from repro.trees.binary import BinarizedTree, binarize_parent
from repro.trees.centroid import (
    CentroidDecomposition,
    centroid_decomposition,
    deepest_on_interest_path,
)
from repro.trees.paths import (
    PathDecomposition,
    bough_decomposition,
    heavy_path_decomposition,
    max_paths_on_root_leaf_route,
)
from repro.trees.rootpaths import RootPaths

__all__ = [
    "BinarizedTree",
    "binarize_parent",
    "PathDecomposition",
    "heavy_path_decomposition",
    "bough_decomposition",
    "max_paths_on_root_leaf_route",
    "RootPaths",
    "CentroidDecomposition",
    "centroid_decomposition",
    "deepest_on_interest_path",
]
