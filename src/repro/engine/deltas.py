"""Edge deltas: the engine's incremental mutation layer.

The staged pipeline preprocesses a *base* graph into a fingerprinted
artifact chain (validate → approximate → forest → index).  Most edits
an evolving-graph workload makes — a handful of inserted edges, a few
deletions, local reweights — leave the packed candidate trees useful:
per Karger's tree-packing argument the cached trees keep covering the
minimum cut while it stays within a constant factor of the stored
underestimate, exactly the regime weight-only reweights sit in.
This module supplies the vocabulary the
engine's :meth:`~repro.engine.CutEngine.update` surface is built on:

:class:`GraphDelta`
    One normalized, validated, immutable batch of edge mutations
    (additions, removals by edge index, reweights by edge index) with a
    content fingerprint and a pure :meth:`GraphDelta.apply`.
:class:`DeltaLog`
    The ordered record of deltas layered over the base fingerprint
    since the last rebase.  Its length is the engine's ``staleness``
    counter; its cumulative absolute weight displacement over the base
    total weight is the *staleness ratio* that triggers a rebase; its
    chained fingerprint extends the artifact chain so memoized
    post-update results stay keyed by exactly what produced them.
:class:`UpdateResult`
    What :meth:`CutEngine.update` returns: the (verified) cut result
    plus the epoch/staleness bookkeeping a caller needs to reason about
    when the engine rebased underneath it.

Edge order under mutation is deterministic: reweights apply to the
current edge arrays in place, removals mask edges out preserving the
order of survivors, and additions append at the end.  A client holding
edge indices must re-derive them after a removal (indices shift), which
the docs call out — the alternative (tombstones) would poison every
downstream ``np`` kernel with masked arithmetic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.resilience.verify import VerificationReport
from repro.results import CutResult

__all__ = [
    "GraphDelta",
    "DeltaLog",
    "UpdateResult",
    "as_delta",
    "random_delta",
]

#: spellings accepted for ``add_edges``: ``(u, v, w)`` triples (or an
#: ``(k, 3)`` array); weights must be positive and finite
EdgeList = Union[Sequence[Tuple[int, int, float]], np.ndarray]
#: spellings accepted for ``reweight``: a sparse ``{edge index: new
#: weight}`` mapping or a full length-``m`` weight vector
Reweight = Union[Mapping[int, float], Iterable[float], np.ndarray]


def _int_array(values, dtype=np.int64) -> np.ndarray:
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if arr.size == 0:
        return np.zeros(0, dtype=dtype)
    return arr.astype(dtype)


@dataclass(frozen=True, eq=False)
class GraphDelta:
    """One validated batch of edge mutations against a specific graph.

    Instances come from :func:`as_delta`, which normalizes the public
    ``update()`` keyword spellings against the graph the delta will be
    applied to; the arrays here are already range-checked.
    """

    #: endpoints and weights of edges to append
    add_u: np.ndarray
    add_v: np.ndarray
    add_w: np.ndarray
    #: sorted, unique indices (into the target graph's edge order) to drop
    remove_idx: np.ndarray
    #: indices and replacement weights for in-place reweights; only
    #: edges whose weight actually changes are recorded, so an empty
    #: ``rw_idx`` means the reweight spelling was a no-op
    rw_idx: np.ndarray
    rw_w: np.ndarray
    #: total absolute weight displacement: |added| + |removed| + |moved|
    weight_delta: float = field(init=False)

    def __post_init__(self) -> None:
        moved = 0.0
        if self.add_w.size:
            moved += float(np.sum(self.add_w))
        moved += float(self._removed_weight)
        if self.rw_idx.size:
            moved += float(np.sum(np.abs(self.rw_w - self._rw_old)))
        object.__setattr__(self, "weight_delta", moved)

    # populated by as_delta (old weights let weight_delta be computed
    # without holding the whole source graph alive)
    _removed_weight: float = 0.0
    _rw_old: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def is_noop(self) -> bool:
        """True when applying this delta returns an identical graph."""
        return not (self.add_u.size or self.remove_idx.size or self.rw_idx.size)

    @property
    def max_added_weight(self) -> float:
        return float(np.max(self.add_w)) if self.add_w.size else 0.0

    def counts(self) -> Dict[str, float]:
        return {
            "added": float(self.add_u.size),
            "removed": float(self.remove_idx.size),
            "reweighted": float(self.rw_idx.size),
            "weight_delta": float(self.weight_delta),
        }

    def fingerprint(self) -> str:
        """Content hash of the mutation batch (not of the target graph)."""
        h = hashlib.sha256()
        for arr in (self.add_u, self.add_v, self.add_w, self.remove_idx,
                    self.rw_idx, self.rw_w):
            h.update(np.ascontiguousarray(arr).tobytes())
            h.update(b"\x00")
        return h.hexdigest()

    def apply(self, graph: Graph) -> Graph:
        """The mutated graph: reweight in place, mask removals keeping
        survivor order, append additions.  Pure — ``graph`` is unchanged."""
        w = np.array(graph.w, dtype=np.float64, copy=True)
        if self.rw_idx.size:
            w[self.rw_idx] = self.rw_w
        u, v = graph.u, graph.v
        if self.remove_idx.size:
            keep = np.ones(graph.m, dtype=bool)
            keep[self.remove_idx] = False
            u, v, w = u[keep], v[keep], w[keep]
        if self.add_u.size:
            u = np.concatenate([u, self.add_u])
            v = np.concatenate([v, self.add_v])
            w = np.concatenate([w, self.add_w])
        return Graph(graph.n, u, v, w)


def as_delta(
    graph: Graph,
    *,
    add_edges: Optional[EdgeList] = None,
    remove_edges: Optional[Union[Sequence[int], np.ndarray]] = None,
    reweight: Optional[Reweight] = None,
) -> GraphDelta:
    """Normalize the public mutation spellings into a :class:`GraphDelta`
    validated against ``graph``.

    Raises :class:`~repro.errors.GraphFormatError` for out-of-range
    indices, self-loop or out-of-range added endpoints, and nonpositive
    or nonfinite weights — an edge whose weight should reach zero is a
    *removal*, exactly as in :meth:`Graph.with_weights(drop_zero=False)
    <repro.graphs.graph.Graph.with_weights>`.
    """
    m = graph.m
    # --- additions -------------------------------------------------
    if add_edges is None:
        add_u = add_v = np.zeros(0, dtype=graph.u.dtype)
        add_w = np.zeros(0, dtype=np.float64)
    else:
        arr = np.asarray(
            list(add_edges) if not isinstance(add_edges, np.ndarray) else add_edges,
            dtype=np.float64,
        )
        if arr.size == 0:
            arr = arr.reshape(0, 3)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise GraphFormatError(
                "add_edges must be (u, v, w) triples; got shape "
                f"{np.asarray(arr).shape}"
            )
        add_u = arr[:, 0].astype(graph.u.dtype)
        add_v = arr[:, 1].astype(graph.v.dtype)
        add_w = np.ascontiguousarray(arr[:, 2], dtype=np.float64)
        if not np.array_equal(arr[:, 0], add_u) or not np.array_equal(arr[:, 1], add_v):
            raise GraphFormatError("add_edges endpoints must be integers")
        if add_u.size:
            if add_u.min() < 0 or add_v.min() < 0 or max(add_u.max(), add_v.max()) >= graph.n:
                raise GraphFormatError(
                    f"add_edges endpoints must lie in [0, {graph.n})"
                )
            if np.any(add_u == add_v):
                raise GraphFormatError("add_edges must not contain self-loops")
            if not np.all(np.isfinite(add_w)) or np.any(add_w <= 0):
                raise GraphFormatError(
                    "add_edges weights must be positive and finite"
                )
    # --- removals --------------------------------------------------
    if remove_edges is None:
        remove_idx = np.zeros(0, dtype=np.int64)
    else:
        remove_idx = np.unique(_int_array(remove_edges))
        if remove_idx.size and (remove_idx[0] < 0 or remove_idx[-1] >= m):
            raise GraphFormatError(
                f"remove_edges indices must lie in [0, {m})"
            )
    removed_weight = (
        float(np.sum(graph.w[remove_idx])) if remove_idx.size else 0.0
    )
    # --- reweights -------------------------------------------------
    if reweight is None:
        rw_idx = np.zeros(0, dtype=np.int64)
        rw_w = np.zeros(0, dtype=np.float64)
    elif isinstance(reweight, Mapping):
        rw_idx = _int_array(reweight.keys())
        rw_w = np.asarray([float(reweight[k]) for k in reweight], dtype=np.float64)
        if rw_idx.size and (rw_idx.min() < 0 or rw_idx.max() >= m):
            raise GraphFormatError(f"reweight indices must lie in [0, {m})")
        order = np.argsort(rw_idx, kind="stable")
        rw_idx, rw_w = rw_idx[order], rw_w[order]
    else:
        w = np.asarray(
            list(reweight) if not isinstance(reweight, np.ndarray) else reweight,
            dtype=np.float64,
        )
        if w.shape != graph.w.shape:
            raise GraphFormatError(
                f"reweight vector has {w.size} entries for a graph with {m} edges"
            )
        rw_idx = np.flatnonzero(w != graph.w)
        rw_w = np.ascontiguousarray(w[rw_idx])
    if rw_idx.size:
        if np.unique(rw_idx).size != rw_idx.size:
            raise GraphFormatError("reweight mapping repeats an edge index")
        if not np.all(np.isfinite(rw_w)) or np.any(rw_w <= 0):
            raise GraphFormatError(
                "reweight weights must be positive and finite; drop an "
                "edge with remove_edges instead of zeroing it"
            )
        # restating the current weight is not a mutation
        changed = rw_w != graph.w[rw_idx]
        rw_idx, rw_w = rw_idx[changed], rw_w[changed]
    rw_old = graph.w[rw_idx] if rw_idx.size else np.zeros(0)
    return GraphDelta(
        add_u=add_u,
        add_v=add_v,
        add_w=add_w,
        remove_idx=remove_idx,
        rw_idx=rw_idx,
        rw_w=rw_w,
        _removed_weight=removed_weight,
        _rw_old=np.ascontiguousarray(rw_old, dtype=np.float64),
    )


class DeltaLog:
    """Ordered deltas layered over one base epoch of the engine.

    ``len(log)`` is the staleness counter; :meth:`staleness_ratio`
    normalizes the cumulative absolute weight displacement by the base
    graph's total weight (the denominator the coverage argument is
    relative to); :attr:`fingerprint` chains every applied delta onto
    the base result fingerprint so a memoized post-update answer is
    keyed by exactly the mutation history that produced it.
    """

    def __init__(self, base_fingerprint: str, base_total_weight: float) -> None:
        self.base_fingerprint = base_fingerprint
        self.base_total_weight = max(float(base_total_weight), 1e-300)
        self.fingerprint = base_fingerprint
        self.weight_delta = 0.0
        self._counts = {"added": 0.0, "removed": 0.0, "reweighted": 0.0}
        self._records: List[str] = []

    def __len__(self) -> int:
        return len(self._records)

    def _chain(self, dfp: str) -> str:
        """Extend the chained fingerprint by one recorded delta hash."""
        h = hashlib.sha256()
        h.update(self.fingerprint.encode())
        h.update(b"\x00delta\x00")
        h.update(dfp.encode())
        self.fingerprint = h.hexdigest()
        self._records.append(dfp)
        return self.fingerprint

    def append(self, delta: GraphDelta) -> str:
        """Chain ``delta`` onto the log; returns the new fingerprint."""
        self.weight_delta += delta.weight_delta
        for key in self._counts:
            self._counts[key] += delta.counts()[key]
        return self._chain(delta.fingerprint())

    def state_dict(self) -> Dict[str, object]:
        """The log's durable state (see :meth:`restore`): aggregates plus
        the per-delta fingerprints the chain head is recomputed from."""
        return {
            "base_fingerprint": self.base_fingerprint,
            "base_total_weight": float(self.base_total_weight),
            "fingerprint": self.fingerprint,
            "weight_delta": float(self.weight_delta),
            "counts": dict(self._counts),
            "records": list(self._records),
        }

    def restore(self, state: Mapping[str, object]) -> str:
        """Overlay a persisted :meth:`state_dict` onto this (fresh) log,
        re-deriving the chained fingerprint from the recorded per-delta
        hashes rather than trusting the stored head.  Returns the
        recomputed head for the caller to verify against
        ``state["fingerprint"]`` — the log itself stays agnostic about
        what a mismatch means."""
        self.weight_delta = float(state["weight_delta"])
        self._counts = {k: float(v) for k, v in dict(state["counts"]).items()}
        self.fingerprint = self.base_fingerprint
        self._records = []
        for dfp in list(state["records"]):
            self._chain(str(dfp))
        return self.fingerprint

    def staleness_ratio(self) -> float:
        return self.weight_delta / self.base_total_weight

    def summary(self) -> Dict[str, float]:
        return {
            "updates": float(len(self._records)),
            "weight_delta": self.weight_delta,
            "staleness_ratio": self.staleness_ratio(),
            **self._counts,
        }


@dataclass(frozen=True, eq=False)
class UpdateResult:
    """What :meth:`CutEngine.update` hands back.

    ``result`` is the post-update minimum cut of the mutated graph —
    exact w.h.p. and, unless ``verify=False``, certified by
    :func:`repro.resilience.verify.verify_cut` (``verification``).
    ``epoch`` counts rebases over the engine's lifetime; a client that
    caches edge indices can compare epochs across calls to detect that
    the engine rebuilt (or another writer mutated) underneath it.
    ``staleness`` is the number of deltas layered on the current epoch's
    artifacts *after* this update.
    """

    result: CutResult
    epoch: int
    staleness: int
    rebased: bool
    rebase_reason: Optional[str]
    noop: bool
    applied: Dict[str, float]
    verification: Optional[VerificationReport]

    @property
    def value(self) -> float:
        return self.result.value

    @property
    def side(self) -> np.ndarray:
        return self.result.side


def random_delta(
    graph: Graph,
    rng: np.random.Generator,
    *,
    p_add: float = 0.45,
    p_remove: float = 0.3,
    p_reweight: float = 0.7,
    max_edges: int = 3,
    weight_scale: float = 1.0,
) -> Dict[str, object]:
    """A random mixed mutation batch against ``graph``, as the keyword
    dict :meth:`CutEngine.update` accepts.

    Shared by the CLI's ``engine --updates`` soak, the wall-clock
    bench's perturbation workload, and the parity tests, so they all
    exercise the same mutation mix.  Weights stay near the graph's mean
    weight (scaled by ``weight_scale``) so the default mix perturbs
    without stampeding the coverage threshold; removals draw from the
    current edge set and may disconnect the graph — a legal input whose
    minimum cut is simply zero.

    Drawn weights are quantized onto the dyadic grid (multiples of
    1/8).  Sums of dyadic rationals are exact in IEEE-754, so the value
    of any cut is independent of summation order — which is what lets
    the parity suite demand *bit-identical* values between an
    incremental ``update()`` answer and a cold rebuild instead of an
    approximate comparison.
    """

    def _dyadic(x: float) -> float:
        return max(0.125, round(x * 8.0) / 8.0)

    mean_w = float(np.mean(graph.w)) if graph.m else 1.0
    out: Dict[str, object] = {}
    if rng.random() < p_add and graph.n >= 2:
        k = int(rng.integers(1, max_edges + 1))
        pairs = set()
        edges = []
        for _ in range(4 * k):
            a, b = int(rng.integers(graph.n)), int(rng.integers(graph.n))
            if a == b or (a, b) in pairs or (b, a) in pairs:
                continue
            pairs.add((a, b))
            w = _dyadic(mean_w * weight_scale * (0.5 + rng.random()))
            edges.append((a, b, w))
            if len(edges) == k:
                break
        if edges:
            out["add_edges"] = edges
    if rng.random() < p_remove and graph.m > graph.n:
        k = int(rng.integers(1, min(max_edges, graph.m - graph.n) + 1))
        out["remove_edges"] = rng.choice(graph.m, size=k, replace=False).tolist()
    if rng.random() < p_reweight and graph.m:
        k = int(rng.integers(1, max_edges + 1))
        idx = rng.choice(graph.m, size=min(k, graph.m), replace=False)
        out["reweight"] = {
            int(i): _dyadic(graph.w[i] * (0.5 + rng.random() * weight_scale))
            for i in idx
        }
    return out
