"""The exact pipeline's stage functions, defined once.

Historically the Section 3 → 4.2 → 4.1 pipeline body lived inside
:func:`repro.core.mincut.minimum_cut`; every other consumer (the
resilient driver, the apps) re-ran it from a bare ``Graph``.  This
module is the single home of the staged body:

``validate → approximate → sparsify → pack → index → search``

* :func:`validate_stage` — trivial/degenerate inputs (and the one place
  disconnected graphs short-circuit);
* :func:`approximate_stage` — the Theorem 3.1 O(1)-approximation;
* the sparsify/pack/index trio lives in :mod:`repro.packing.karger`
  (:func:`~repro.packing.karger.build_cut_skeleton`,
  :func:`~repro.packing.karger.pack_skeleton`,
  :func:`~repro.packing.karger.select_trees`);
* :func:`search_stage` — the per-tree minimum 2-respecting search
  (Theorem 4.2), the only stage that runs per *query*;
* :func:`assemble_result` — final stats/counter assembly.

:func:`run_pipeline` composes them into the one-shot run that
:func:`repro.core.mincut.minimum_cut` and the resilient driver execute
(including the per-stage checkpoint hooks), and
:class:`repro.engine.CutEngine` runs the same functions with each
stage's artifact cached between queries — so engine-mediated results
are bit-identical to direct ones by construction, not by testing alone
(the tests pin it anyway).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro import obs
from repro.errors import GraphFormatError, InvalidParameterError
from repro.graphs.graph import Graph
from repro.graphs.validate import ensure_finite_weights
from repro.packing.karger import build_cut_skeleton, pack_skeleton, select_trees
from repro.params import CutPipelineParams
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import checkpoint as _checkpoint
from repro.results import CutResult
from repro.sparsify.hierarchy import HierarchyParams
from repro.tworespect.algorithm import two_respecting_min_cut

__all__ = [
    "validate_stage",
    "approximate_stage",
    "search_stage",
    "assemble_result",
    "resolve_max_trees",
    "branching_for_epsilon",
    "run_pipeline",
    "cut_to_payload",
    "cut_from_payload",
]


def branching_for_epsilon(n: int, epsilon: Optional[float]) -> int:
    """Range-tree degree ``max(2, round(n^epsilon))`` (Section 4.3).

    ``epsilon=None`` (or any value driving the degree to 2) selects the
    general-graph structure of Lemma 4.9.
    """
    if epsilon is not None and epsilon <= 0:
        raise InvalidParameterError("epsilon must be positive")
    if epsilon is None or n < 2:
        return 2
    return max(2, int(round(n**epsilon)))


def restore_rng(rng: np.random.Generator, payload: dict) -> None:
    """Rewind ``rng`` to the state snapshotted when ``payload`` was saved,
    so a resumed pipeline consumes exactly the draws an uninterrupted one
    would (the bit-identical-resume contract)."""
    state = payload.get("rng_state")
    if state is not None:
        rng.bit_generator.state = state


def cut_to_payload(res: CutResult) -> dict:
    """A picklable snapshot of a search-stage candidate (``CutResult.stats``
    is a MappingProxyType, which pickle refuses)."""
    return {
        "value": res.value,
        "side": np.asarray(res.side, dtype=bool),
        "witness_edges": res.witness_edges,
        "stats": dict(res.stats),
    }


def cut_from_payload(payload: dict) -> CutResult:
    return CutResult(
        value=payload["value"],
        side=payload["side"],
        witness_edges=payload["witness_edges"],
        stats=payload["stats"],
    )


def resolve_max_trees(
    max_trees: "int | None | str", n: int
) -> Optional[int]:
    """``"auto"`` → the paper's ``ceil(3 log2 n)`` schedule; ints and
    None (thorough mode) pass through."""
    if max_trees == "auto":
        return int(math.ceil(3 * math.log2(max(n, 2))))
    return max_trees  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# stages
# ---------------------------------------------------------------------------
def validate_stage(graph: Graph) -> Optional[CutResult]:
    """Reject malformed inputs; short-circuit degenerate ones.

    Returns the finished :class:`CutResult` for disconnected or
    two-vertex inputs, None when the full pipeline must run.
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    ensure_finite_weights(graph)
    k, labels = graph.connected_components()
    if k > 1:
        return CutResult(value=0.0, side=labels == labels[0], stats={"num_trees": 0.0})
    if graph.n == 2:
        return CutResult(
            value=graph.total_weight,
            side=np.array([True, False]),
            stats={"num_trees": 0.0},
        )
    return None


def approximate_stage(
    graph: Graph,
    params: CutPipelineParams,
    rng: np.random.Generator,
    ledger: Ledger,
) -> float:
    """The Section 3 stage: an O(1)-approximation of the min cut value,
    floored away from zero so the packing underestimate stays positive."""
    from repro.approx.approximate import approximate_minimum_cut

    hier = params.hierarchy if params.hierarchy is not None else HierarchyParams()
    with obs.phase("approximate", ledger):
        approx = approximate_minimum_cut(graph, params=hier, rng=rng, ledger=ledger)
    return max(approx.estimate, 1e-12)


def search_stage(
    graph: Graph,
    tree_parents: List[np.ndarray],
    *,
    branching: int,
    decomposition: str,
    ledger: Ledger,
    rng: Optional[np.random.Generator] = None,
    hooks=None,
    trees_done: int = 0,
    best: Optional[CutResult] = None,
) -> CutResult:
    """The per-query stage: every candidate tree's minimum 2-respecting
    cut (Theorem 4.2), searched in logically-parallel ledger branches.

    ``hooks``/``trees_done``/``best`` carry the checkpoint/resume
    protocol of :mod:`repro.resilience.checkpointing`: each finished
    tree is persisted (with the rng state), and a resumed call skips the
    first ``trees_done`` trees.
    """
    with obs.phase("two-respecting", ledger):
        with ledger.parallel() as par:
            for i, parent in enumerate(tree_parents):
                if i < trees_done:
                    continue  # already searched before the checkpoint
                _checkpoint("mincut.tree")
                with par.branch():
                    res = two_respecting_min_cut(
                        graph,
                        parent,
                        branching=branching,
                        decomposition=decomposition,
                        ledger=ledger,
                    )
                    if best is None or res.value < best.value:
                        best = res
                if hooks is not None:
                    hooks.save_stage(
                        "trees",
                        {"done": i + 1, "best": cut_to_payload(best)},
                        rng=rng,
                    )
    assert best is not None  # packing always yields >= 1 tree
    return best


def assemble_result(
    best: CutResult,
    packing_stats: dict,
    lambda_under: float,
    branching: int,
) -> CutResult:
    """Fold the packing statistics and pipeline constants into the best
    candidate's stats (and bump the ``mincut.*`` counters)."""
    reg = obs.counters()
    if reg.enabled:
        reg.add("mincut.trees_tested", packing_stats["num_trees"])
    stats = dict(best.stats)
    stats.update(packing_stats)
    stats.update(
        {
            "lambda_underestimate": float(lambda_under),
            "branching": float(branching),
        }
    )
    return CutResult(
        value=best.value,
        side=best.side,
        witness_edges=best.witness_edges,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# the one-shot composition
# ---------------------------------------------------------------------------
def run_pipeline(
    graph: Graph,
    params: CutPipelineParams,
    approx_value: Optional[float],
    rng: Optional[np.random.Generator],
    ledger: Ledger,
    hooks=None,
) -> CutResult:
    """The staged pipeline body behind :func:`repro.minimum_cut`.

    ``hooks`` (duck-typed; see
    :class:`repro.resilience.checkpointing.PipelineHooks`) persists and
    restores completed-stage artifacts for checkpoint/resume.  Each
    ``save_stage`` snapshots the generator state alongside the payload,
    and each restored stage rewinds ``rng`` to that snapshot, so a
    resumed run consumes exactly the randomness an uninterrupted one
    would — the resumed result is bit-identical.  ``hooks=None`` (every
    direct call) is zero-overhead.
    """
    early = validate_stage(graph)
    if early is not None:
        return early
    rng = rng if rng is not None else np.random.default_rng()

    # --- stage 1: O(1)-approximation (Theorem 3.1) -------------------------
    if approx_value is None:
        loaded = hooks.load_stage("approx") if hooks is not None else None
        if loaded is not None:
            approx_value = loaded["approx_value"]
            restore_rng(rng, loaded)
        else:
            approx_value = approximate_stage(graph, params, rng, ledger)
            if hooks is not None:
                hooks.save_stage("approx", {"approx_value": approx_value}, rng=rng)
    lambda_under = float(approx_value) / 2.0  # Section 4.2's underestimate

    # --- stage 2: skeleton + tree packing (Theorem 4.18) -------------------
    max_trees = resolve_max_trees(params.max_trees, graph.n)
    loaded = hooks.load_stage("packing") if hooks is not None else None
    if loaded is not None:
        tree_parents = loaded["tree_parents"]
        packing_stats = loaded["stats"]
        restore_rng(rng, loaded)
    else:
        with obs.phase("packing", ledger):
            skel = build_cut_skeleton(
                graph,
                lambda_under,
                skeleton_params=params.skeleton,
                rng=rng,
                ledger=ledger,
            )
            packing = pack_skeleton(
                skel, packing_iterations=params.packing_iterations, ledger=ledger
            )
            tree_parents = select_trees(packing, max_trees, rng)
        packing_stats = {
            "num_trees": float(len(tree_parents)),
            "skeleton_edges": float(skel.skeleton.m),
            "skeleton_p": float(skel.p),
            "packing_iterations": float(packing.iterations),
        }
        if hooks is not None:
            hooks.save_stage(
                "packing",
                {"tree_parents": list(tree_parents), "stats": packing_stats},
                rng=rng,
            )

    # --- stage 3: per-tree 2-respecting min-cut (Theorem 4.2) --------------
    branching = branching_for_epsilon(graph.n, params.epsilon)
    best: Optional[CutResult] = None
    trees_done = 0
    loaded = hooks.load_stage("trees") if hooks is not None else None
    if loaded is not None:
        trees_done = loaded["done"]
        if loaded["best"] is not None:
            best = cut_from_payload(loaded["best"])
        restore_rng(rng, loaded)
    best = search_stage(
        graph,
        tree_parents,
        branching=branching,
        decomposition=params.decomposition,
        ledger=ledger,
        rng=rng,
        hooks=hooks,
        trees_done=trees_done,
        best=best,
    )
    return assemble_result(best, packing_stats, lambda_under, branching)
