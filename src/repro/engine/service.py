"""The staged cut engine: preprocess once, answer many queries.

:class:`CutEngine` binds a graph, a randomness stream, and one
:class:`~repro.params.CutPipelineParams` bundle, then runs the exact
pipeline of :mod:`repro.engine.stages` with every preprocessing stage
producing a frozen, fingerprinted artifact in an
:class:`~repro.engine.cache.ArtifactCache`:

========  ==========================================  ==================
stage     artifact                                    depends on
========  ==========================================  ==================
validate  :class:`~repro.engine.artifacts.ValidationArtifact`   graph bytes
approx    :class:`~repro.engine.artifacts.ApproxArtifact`       + seed, hierarchy params
forest    :class:`~repro.engine.artifacts.PackedForest`         + skeleton params, packing iterations
index     :class:`~repro.engine.artifacts.TreeIndex`            + max_trees
========  ==========================================  ==================

Because the cache key *is* the dependency fingerprint, invalidation is
deterministic: change the graph, the seed, or a parameter a stage
depends on and the next query simply misses and rebuilds — nothing is
ever served stale.

**Parity.** A cold :meth:`min_cut` runs exactly the stage functions
(and consumes exactly the rng draws, via the per-artifact generator
snapshots) that one-shot :func:`repro.minimum_cut` runs, so its value,
side, stats, and ledger charges are bit-identical — by construction,
and pinned across executor backends in ``tests/test_engine.py``.  A
*warm* query replays the cached artifacts and charges the ledger only
for the per-query 2-respecting search.

**Batch.** :meth:`min_cut_batch` preprocesses once, then fans the
independent per-seed queries (tree selection + search) through
:func:`repro.pram.executor.parallel_map` on the active backend, each on
a private :class:`~repro.pram.ledger.Ledger` absorbed with the
fork-join rule (:meth:`~repro.pram.ledger.Ledger.absorb_parallel`) —
so the batch's depth reflects the logical parallelism while work sums.

**Update.** :meth:`update` is the engine's one mutation surface: edge
additions, removals, and reweights arrive as a validated
:class:`~repro.engine.deltas.GraphDelta`, are layered over the *base*
graph's artifact chain in a :class:`~repro.engine.deltas.DeltaLog`, and
are answered by re-running only the per-query 2-respecting search over
the cached packed trees — the tree-packing argument keeps the cached
candidate trees valid while the mutated minimum cut stays within the
packing's coverage (~3× the stored underestimate).  Three triggers
rebase the engine onto the mutated graph instead (cold preprocessing,
epoch + 1): an added edge too heavy for the packing to certifiably
cover, a cumulative staleness ratio past ``max_staleness``, or a
post-search value past the coverage edge.  Every non-noop update's
answer is certified by :func:`repro.resilience.verify.verify_cut`, with
a seed-escalated rebase retry on mismatch — exactness never depends on
the delta heuristics.  :meth:`rebase` is the explicit epoch bump, and
:meth:`snapshot_state` / :meth:`restore_state` expose the engine's
durable identity to :mod:`repro.durability`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Literal, Mapping, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.engine.artifacts import (
    ApproxArtifact,
    PackedForest,
    TreeIndex,
    ValidationArtifact,
    combine_fingerprint,
    graph_fingerprint,
)
from repro.engine.cache import ArtifactCache
from repro.engine.stages import (
    approximate_stage,
    assemble_result,
    branching_for_epsilon,
    cut_from_payload,
    cut_to_payload,
    resolve_max_trees,
    search_stage,
    validate_stage,
)
from repro.engine.deltas import (
    DeltaLog,
    EdgeList,
    GraphDelta,
    Reweight,
    UpdateResult,
    as_delta,
)
from repro.errors import (
    InvalidParameterError,
    RecoveryError,
    UpdateVerificationError,
)
from repro.graphs.graph import Graph
from repro.packing.karger import build_cut_skeleton, pack_skeleton, select_trees
from repro.params import CutPipelineParams
from repro.pram.executor import parallel_map
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.faults import SITE_DELTA_FORCE_REBASE, poll as poll_fault
from repro.resilience.verify import verify_cut
from repro.results import CutResult
from repro.sparsify.hierarchy import HierarchyParams
from repro.sparsify.skeleton import SkeletonParams

__all__ = ["CutEngine"]

#: seed accepted anywhere NumPy's ``default_rng`` accepts one
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def _batch_search(context, seed) -> tuple:
    """One batch query: select this seed's candidate trees from the
    shared packing and run the 2-respecting search.

    Module-level so the process backend can pickle it by reference.
    ``context`` is the per-batch broadcast ``(graph, packing, max_trees,
    branching, decomposition)``, crossing the pool boundary once per
    dispatch — installed by a pool initializer on the process backend,
    attached as a zero-copy shared-memory view on the shm backend —
    while each task carries only its seed.  The returned candidate is a
    payload dict (``CutResult.stats`` is a MappingProxyType, which
    pickle refuses) plus the branch's private ledger for the caller to
    absorb.  Tracing is suppressed inside the worker — concurrent
    branches would race the tracer's span stack.
    """
    graph, packing, max_trees, branching, decomposition = context
    with obs.suppress_tracing():
        led = Ledger()
        parents = select_trees(packing, max_trees, np.random.default_rng(seed))
        best = search_stage(
            graph,
            parents,
            branching=branching,
            decomposition=decomposition,
            ledger=led,
        )
    return cut_to_payload(best), float(len(parents)), led


class CutEngine:
    """Staged minimum-cut service over one graph.

    Parameters
    ----------
    graph:
        The bound input.  :meth:`update` mutates the engine's view of
        it; :meth:`rebase` re-points the engine.
    seed, rng:
        The engine's randomness stream (mutually exclusive).  Passing a
        shared ``rng`` consumes it exactly as the one-shot pipeline
        would — callers threading one generator through many calls
        (e.g. the clustering app) stay bit-identical.
    epsilon, max_trees, decomposition, skeleton_params, hierarchy_params,
    packing_iterations, pipeline:
        The pipeline knobs, same spelling as :func:`repro.minimum_cut`
        (see :class:`repro.params.CutPipelineParams`).
    approx_value:
        A known O(1)-approximation; skips the Section 3 stage.
    ledger:
        Work/depth sink for every stage this engine runs.  Cached
        (warm) stages charge nothing — that is the engine's point.
    cache:
        The artifact store; defaults to a private
        :class:`~repro.engine.cache.ArtifactCache`.  Pass a shared one
        to amortize across engines (single-threaded use only).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        seed: SeedLike = None,
        rng: Optional[np.random.Generator] = None,
        epsilon: Optional[float] = None,
        approx_value: Optional[float] = None,
        max_trees: "int | None | Literal['auto']" = "auto",
        decomposition: Literal["heavy", "bough"] = "heavy",
        skeleton_params: SkeletonParams = SkeletonParams(),
        hierarchy_params: Optional[HierarchyParams] = None,
        packing_iterations: Optional[int] = None,
        pipeline: Optional[CutPipelineParams] = None,
        ledger: Ledger = NULL_LEDGER,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        if rng is not None and seed is not None:
            raise InvalidParameterError("pass seed= or rng=, not both")
        self.params = CutPipelineParams.resolve(
            pipeline,
            epsilon=epsilon,
            max_trees=max_trees,
            decomposition=decomposition,
            skeleton=skeleton_params,
            hierarchy=hierarchy_params,
            packing_iterations=packing_iterations,
        )
        self.ledger = ledger
        self.cache = cache if cache is not None else ArtifactCache()
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._approx_value = None if approx_value is None else float(approx_value)
        self._bind(graph)

    # ------------------------------------------------------------------
    # binding and fingerprints
    # ------------------------------------------------------------------
    def _bind(self, graph: Graph) -> None:
        """(Re)point the engine at ``graph``: rebuild the fingerprint
        chain, snapshot the rng position cold stages replay from, bump
        the epoch, and clear the delta log — ``graph`` becomes the new
        *base* every artifact is built from."""
        self._base_graph = graph
        self._graph = graph
        self._epoch = getattr(self, "_epoch", -1) + 1
        self._state0 = self._rng.bit_generator.state
        gfp = graph_fingerprint(graph)
        self._fp_validate = gfp
        self._fp_approx = combine_fingerprint(
            "approximate", gfp, self._state0, self.params.hierarchy, self._approx_value
        )
        self._fp_forest = combine_fingerprint(
            "forest",
            self._fp_approx,
            self.params.skeleton,
            self.params.packing_iterations,
        )
        self._max_trees = resolve_max_trees(self.params.max_trees, graph.n)
        self._fp_index = combine_fingerprint("index", self._fp_forest, self._max_trees)
        # the assembled-answer memo: the per-query search is a pure
        # function of the index artifact plus (epsilon, decomposition),
        # so the final CutResult may itself be cached and replayed
        self._fp_result = combine_fingerprint(
            "result", self._fp_index, self.params.epsilon, self.params.decomposition
        )
        # the mutation chain: deltas layered on this epoch extend
        # _fp_current past _fp_result, so memoized post-update answers
        # are keyed by the exact mutation history (and epoch) that
        # produced them
        self._delta_log = DeltaLog(
            combine_fingerprint("epoch", self._fp_result, self._epoch),
            graph.total_weight,
        )
        self._fp_current = self._fp_result

    @property
    def graph(self) -> Graph:
        """The current (possibly delta-mutated) graph queries answer for."""
        return self._graph

    @property
    def base_graph(self) -> Graph:
        """The graph the cached artifact chain was preprocessed from."""
        return self._base_graph

    @property
    def epoch(self) -> int:
        """Rebases over the engine's lifetime (0 for the initial bind).
        A changed epoch tells a client every edge index it holds may
        have shifted."""
        return self._epoch

    @property
    def staleness(self) -> int:
        """Deltas layered over the current epoch's artifacts."""
        return len(self._delta_log)

    @property
    def staleness_ratio(self) -> float:
        """Cumulative absolute weight displacement of the layered deltas
        over the base graph's total weight."""
        return self._delta_log.staleness_ratio()

    @property
    def delta_log(self) -> DeltaLog:
        return self._delta_log

    def fingerprint_chain(self) -> Dict[str, Dict[str, object]]:
        """The per-artifact fingerprint chain with the epoch each entry
        belongs to — what ``graph_info`` exposes over the wire."""
        chain = {
            "validate": self._fp_validate,
            "approximate": self._fp_approx,
            "forest": self._fp_forest,
            "index": self._fp_index,
            "result": self._fp_result,
            "current": self._fp_current,
        }
        return {
            stage: {"fingerprint": fp, "epoch": self._epoch}
            for stage, fp in chain.items()
        }

    def rebase(self, graph: Optional[Graph] = None) -> "CutEngine":
        """Re-point the engine at ``graph`` (default: the current,
        possibly delta-mutated graph); later queries preprocess it
        afresh (old artifacts stay cached under their own fingerprints,
        so rebasing back is warm).  Bumps :attr:`epoch` and resets
        :attr:`staleness`."""
        self._bind(self._graph if graph is None else graph)
        return self

    # ------------------------------------------------------------------
    # stage runners (cache-through)
    # ------------------------------------------------------------------
    def _validated(self) -> ValidationArtifact:
        art = self.cache.get("validate", self._fp_validate)
        if art is None:
            obs.counters().add("engine.stage_runs")
            art = ValidationArtifact(
                self._fp_validate, validate_stage(self._base_graph)
            )
            self.cache.put("validate", self._fp_validate, art)
        return art

    def _approximated(self, ledger: Ledger) -> ApproxArtifact:
        art = self.cache.get("approximate", self._fp_approx)
        if art is None:
            obs.counters().add("engine.stage_runs")
            if self._approx_value is not None:
                art = ApproxArtifact(self._fp_approx, self._approx_value, self._state0)
            else:
                self._rng.bit_generator.state = self._state0
                value = approximate_stage(
                    self._base_graph, self.params, self._rng, ledger
                )
                art = ApproxArtifact(
                    self._fp_approx, value, self._rng.bit_generator.state
                )
            self.cache.put("approximate", self._fp_approx, art)
        if art.rng_state is not None:
            # hit or rebuild alike, park the generator at the stage's
            # recorded post-run position: the live position must be a
            # pure function of the stages consumed, never of cache
            # state, or a restored engine rebuilding on a cold cache
            # would reach its next rebase at a different position than
            # the engine whose WAL it is replaying
            self._rng.bit_generator.state = art.rng_state
        return art

    def _forest(self, ledger: Ledger) -> PackedForest:
        art = self.cache.get("forest", self._fp_forest)
        if art is None:
            approx = self._approximated(ledger)
            obs.counters().add("engine.stage_runs")
            if approx.rng_state is not None:
                self._rng.bit_generator.state = approx.rng_state
            with obs.phase("packing", ledger):
                skel = build_cut_skeleton(
                    self._base_graph,
                    approx.lambda_underestimate,
                    skeleton_params=self.params.skeleton,
                    rng=self._rng,
                    ledger=ledger,
                )
                packing = pack_skeleton(
                    skel,
                    packing_iterations=self.params.packing_iterations,
                    ledger=ledger,
                )
            art = PackedForest(
                self._fp_forest,
                packing,
                float(skel.skeleton.m),
                float(skel.p),
                self._rng.bit_generator.state,
            )
            self.cache.put("forest", self._fp_forest, art)
        if art.rng_state is not None:
            # hit or rebuild alike — see _approximated
            self._rng.bit_generator.state = art.rng_state
        return art

    def _indexed(self, ledger: Ledger) -> TreeIndex:
        art = self.cache.get("index", self._fp_index)
        if art is None:
            forest = self._forest(ledger)
            obs.counters().add("engine.stage_runs")
            if forest.rng_state is not None:
                self._rng.bit_generator.state = forest.rng_state
            with obs.phase("packing", ledger):
                parents = select_trees(forest.packing, self._max_trees, self._rng)
            stats = {
                "num_trees": float(len(parents)),
                "skeleton_edges": forest.skeleton_edges,
                "skeleton_p": forest.skeleton_p,
                "packing_iterations": float(forest.packing.iterations),
            }
            art = TreeIndex(
                self._fp_index,
                tuple(parents),
                stats,
                self._rng.bit_generator.state,
            )
            self.cache.put("index", self._fp_index, art)
        if art.rng_state is not None:
            # hit or rebuild alike — see _approximated
            self._rng.bit_generator.state = art.rng_state
        return art

    def warm(self) -> "CutEngine":
        """Build (or verify cached) every preprocessing artifact now, so
        later queries charge only the search."""
        if self._validated().early is None:
            self._indexed(self.ledger)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def min_cut(self, *, trace: bool = False) -> CutResult:
        """The bound graph's minimum cut, w.h.p. exact.

        Cold calls charge the full pipeline to the engine's ledger and
        are bit-identical to :func:`repro.minimum_cut` with the same
        inputs; warm calls replay cached artifacts and charge only the
        2-respecting search.
        """
        if trace and not obs.tracing_active():
            ledger = self.ledger if self.ledger is not NULL_LEDGER else Ledger()
            tracer = obs.Tracer(ledger=ledger)
            with tracer.activate():
                res = self._query(ledger)
            report = tracer.report(
                algorithm="engine.min_cut", n=self._graph.n, m=self._graph.m
            )
            return dataclasses.replace(res, report=report)
        return self._query(self.ledger)

    def _query(self, ledger: Ledger) -> CutResult:
        obs.counters().add("engine.queries")
        if len(self._delta_log):
            return self._delta_query(ledger)
        val = self._validated()
        if val.early is not None:
            return val.early
        approx = self._approximated(ledger)
        index = self._indexed(ledger)
        branching = branching_for_epsilon(self._graph.n, self.params.epsilon)
        best = search_stage(
            self._graph,
            list(index.tree_parents),
            branching=branching,
            decomposition=self.params.decomposition,
            ledger=ledger,
        )
        res = assemble_result(
            best, dict(index.packing_stats), approx.lambda_underestimate, branching
        )
        self.cache.put("result", self._fp_result, res)
        return res

    def _epoch_stats(self) -> Dict[str, float]:
        return {
            "epoch": float(self._epoch),
            "staleness": float(len(self._delta_log)),
        }

    def _delta_query(self, ledger: Ledger) -> CutResult:
        """Answer for the current delta-mutated graph off the *base*
        epoch's packed trees: fresh (uncached, charge-free) validation
        of the mutated graph, then only the 2-respecting search runs.
        Memoized under the delta-chain fingerprint."""
        early = validate_stage(self._graph)
        if early is not None:
            res = dataclasses.replace(
                early, stats={**dict(early.stats), **self._epoch_stats()}
            )
            self.cache.put("result", self._fp_current, res)
            return res
        approx = self._approximated(ledger)
        index = self._indexed(ledger)
        branching = branching_for_epsilon(self._graph.n, self.params.epsilon)
        best = search_stage(
            self._graph,
            list(index.tree_parents),
            branching=branching,
            decomposition=self.params.decomposition,
            ledger=ledger,
        )
        res = assemble_result(
            best, dict(index.packing_stats), approx.lambda_underestimate, branching
        )
        res = dataclasses.replace(
            res, stats={**dict(res.stats), **self._epoch_stats()}
        )
        self.cache.put("result", self._fp_current, res)
        return res

    def min_cut_batch(
        self, seeds: Sequence[SeedLike], *, trace: bool = False
    ) -> List[CutResult]:
        """Independent minimum-cut queries, one per seed, in seed order.

        Preprocessing (approximation, skeleton, greedy packing) runs —
        and charges the ledger — **once**; each seed then drives its own
        candidate-tree selection and 2-respecting search, fanned through
        :func:`repro.pram.executor.parallel_map` on the active executor
        backend.  Per-query ledgers are absorbed with the fork-join rule
        (work sums, depth maxes), so the batch is accounted as one
        parallel round of searches.
        """
        seeds = list(seeds)
        if not seeds:
            return []
        reg = obs.counters()
        if reg.enabled:
            reg.add("engine.batch_queries")
            reg.add("engine.queries", float(len(seeds)))
        if trace and not obs.tracing_active():
            ledger = self.ledger if self.ledger is not NULL_LEDGER else Ledger()
            tracer = obs.Tracer(ledger=ledger)
            with tracer.activate():
                results = self._batch_impl(seeds, ledger)
            report = tracer.report(
                algorithm="engine.min_cut_batch",
                n=self._graph.n,
                m=self._graph.m,
                batch=len(seeds),
            )
            return [dataclasses.replace(r, report=report) for r in results]
        return self._batch_impl(seeds, self.ledger)

    def _batch_impl(self, seeds: List[SeedLike], ledger: Ledger) -> List[CutResult]:
        if len(self._delta_log):
            # delta epoch: the mutated graph needs its own (cheap,
            # uncached) validation — the cached artifact answers for
            # the base graph only
            early = validate_stage(self._graph)
        else:
            early = self._validated().early
        if early is not None:
            return [early for _ in seeds]
        approx = self._approximated(ledger)
        forest = self._forest(ledger)
        branching = branching_for_epsilon(self._graph.n, self.params.epsilon)
        # the immutable per-batch payload travels as a broadcast context
        # (pickled once / published once into shared memory), keyed by
        # the forest fingerprint so repeated batches on the same engine
        # reuse the live publication; tasks are bare seeds
        context = (
            self._graph,
            forest.packing,
            self._max_trees,
            branching,
            self.params.decomposition,
        )
        # keyed by _fp_current as well: a delta mutation changes the
        # broadcast graph, so the live publication must not be reused
        context_key = combine_fingerprint(
            "batch-ctx", self._fp_forest, self._fp_current, self._max_trees,
            branching, self.params.decomposition,
        )
        with obs.phase("batch-search", ledger):
            outcomes = parallel_map(
                _batch_search, seeds, context=context, context_key=context_key
            )
        ledger.absorb_parallel(*(led for _, _, led in outcomes))
        results = []
        for payload, num_trees, _ in outcomes:
            stats = {
                "num_trees": num_trees,
                "skeleton_edges": forest.skeleton_edges,
                "skeleton_p": forest.skeleton_p,
                "packing_iterations": float(forest.packing.iterations),
            }
            results.append(
                assemble_result(
                    cut_from_payload(payload),
                    stats,
                    approx.lambda_underestimate,
                    branching,
                )
            )
        return results

    def update(
        self,
        *,
        add_edges: Optional[EdgeList] = None,
        remove_edges: Optional[Union[Sequence[int], np.ndarray]] = None,
        reweight: Optional[Reweight] = None,
        rebase_threshold: Optional[float] = 3.0,
        max_staleness: Optional[float] = 0.5,
        verify: bool = True,
        max_verify_retries: int = 2,
    ) -> UpdateResult:
        """Mutate the bound graph and answer its new minimum cut.

        This is the engine's **one mutation surface** — :meth:`rebase`
        is the explicit epoch bump it falls back to.  The mutation
        batch is normalized into a
        :class:`~repro.engine.deltas.GraphDelta` (see
        :func:`~repro.engine.deltas.as_delta` for the accepted
        spellings and validation), applied to the *current* graph, and
        layered over the base epoch's artifact chain in the engine's
        :class:`~repro.engine.deltas.DeltaLog`: only the per-query
        2-respecting search re-runs, against the cached packed trees,
        which stays exact w.h.p. while the mutated minimum cut remains
        within the packing's coverage.

        The engine **rebases** (cold preprocessing of the mutated
        graph, :attr:`epoch` + 1, staleness reset) instead when any
        trigger fires — each counted under ``engine.rebase.<reason>``:

        ``uncovered_edge``
            an added edge heavier than ``rebase_threshold`` × the
            stored underestimate could itself change the cut structure
            beyond what the packing certifiably covers;
        ``staleness``
            the log's cumulative absolute weight displacement exceeds
            ``max_staleness`` × the base total weight;
        ``coverage``
            the post-search value exceeds ``rebase_threshold`` × the
            stored underestimate (the classic coverage edge);
        ``fault`` / ``base_early`` / ``verify``
            an armed ``delta.force_rebase`` fault, a base graph that
            never had artifacts (disconnected/tiny), or a failed
            verification (below).

        Unless ``verify=False``, the answer is certified by
        :func:`repro.resilience.verify.verify_cut`; on a failed
        certificate the engine escalates its seed, rebases, and retries
        (``max_verify_retries`` times) before raising
        :class:`~repro.errors.UpdateVerificationError` — exactness
        never depends on the delta heuristics.

        A no-op batch (no additions, no removals, a reweight restating
        current weights) is answered from the result memo — a pure
        cache hit that charges nothing, counted by
        ``engine.update_noops``.  ``None`` for ``rebase_threshold`` or
        ``max_staleness`` disables that trigger.
        """
        reg = obs.counters()
        reg.add("engine.updates")
        delta = as_delta(
            self._graph,
            add_edges=add_edges,
            remove_edges=remove_edges,
            reweight=reweight,
        )
        if delta.is_noop:
            reg.add("engine.update_noops")
            res = self.cache.get("result", self._fp_current)
            if res is None:
                res = self.min_cut()
            res = dataclasses.replace(
                res,
                stats={**dict(res.stats), "update": 1.0, **self._epoch_stats()},
            )
            return UpdateResult(
                result=res,
                epoch=self._epoch,
                staleness=self.staleness,
                rebased=False,
                rebase_reason=None,
                noop=True,
                applied=delta.counts(),
                verification=res.verification,
            )
        ledger = self.ledger
        base_early = self._validated().early
        self._graph = delta.apply(self._graph)
        self._fp_current = self._delta_log.append(delta)
        # everything this update may consume randomness for — stage
        # rebuilds, a triggered rebase, seed-escalated verify retries —
        # runs off a generator pinned to the durable mutation history.
        # The live generator's position is an accident of cache hits
        # and read traffic (neither is in the WAL), so binding a new
        # epoch at it would mint fingerprints a crash recovery's replay
        # of this same update could never reproduce.
        self._rng = np.random.default_rng(
            np.random.SeedSequence(int(self._fp_current, 16))
        )
        reason: Optional[str] = None
        if poll_fault(SITE_DELTA_FORCE_REBASE) is not None:
            reason = "fault"
        elif base_early is not None:
            # the base epoch never built artifacts past validation
            # (disconnected or tiny graph): nothing to patch, go cold
            reason = "base_early"
        elif (
            max_staleness is not None
            and self._delta_log.staleness_ratio() > max_staleness
        ):
            reason = "staleness"
        elif rebase_threshold is not None and delta.max_added_weight > 0:
            lam = self._approximated(ledger).lambda_underestimate
            if delta.max_added_weight > rebase_threshold * lam:
                reason = "uncovered_edge"
        res: Optional[CutResult] = None
        if reason is None:
            res = self._delta_query(ledger)
            if (
                rebase_threshold is not None
                and res.value
                > rebase_threshold * self._approximated(ledger).lambda_underestimate
            ):
                # the packing no longer certifiably covers the minimum
                # cut of the mutated graph
                reason = "coverage"
                res = None
        rebased = reason is not None
        if rebased:
            reg.add("engine.rebases")
            reg.add(f"engine.rebase.{reason}")
            self.rebase()
            res = self.min_cut()
        report = None
        if verify:
            for attempt in range(max_verify_retries + 1):
                with obs.phase("verify", ledger):
                    report = verify_cut(self._graph, res, ledger=ledger)
                if report.ok:
                    break
                reg.add("engine.update_verify_failures")
                if attempt == max_verify_retries:
                    raise UpdateVerificationError(
                        f"post-update cut (value {res.value}) failed "
                        f"verification after {max_verify_retries} "
                        f"seed-escalated rebases: {report.detail}"
                    )
                # seed-escalated retry: derive a fresh stream, rebase
                # cold, and answer again — a w.h.p. miss of the packed
                # trees must not survive into the returned result
                self._rng = np.random.default_rng(
                    int(self._rng.integers(2**63)) + attempt
                )
                if not rebased:
                    rebased, reason = True, "verify"
                    reg.add("engine.rebases")
                    reg.add("engine.rebase.verify")
                self.rebase()
                res = self.min_cut()
        stats = {**dict(res.stats), "update": 1.0, **self._epoch_stats()}
        if rebased:
            stats["rebased"] = 1.0
        res = dataclasses.replace(
            res,
            stats=stats,
            verification=report if report is not None else res.verification,
        )
        self.cache.put("result", self._fp_current, res)
        return UpdateResult(
            result=res,
            epoch=self._epoch,
            staleness=self.staleness,
            rebased=rebased,
            rebase_reason=reason,
            noop=False,
            applied=delta.counts(),
            verification=report,
        )

    # ------------------------------------------------------------------
    # durable state (repro.durability)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """The engine's durable identity, as one picklable dict.

        Captures everything :meth:`restore_state` needs to resurrect a
        bit-identical engine in a fresh process: the base graph the
        artifact chain was preprocessed from, the current
        (delta-mutated) graph, the epoch, the rng position cold stages
        replay from (``_state0``) *and* the live generator state, the
        delta log's :meth:`~repro.engine.deltas.DeltaLog.state_dict`,
        and the fingerprint chain heads the restore verifies against.
        Cached artifacts are deliberately excluded — they are a pure
        function of this state and rebuild on the first warm query.
        """
        return {
            "version": 1,
            "params_key": repr(self.params),
            "epoch": self._epoch,
            "state0": self._state0,
            "rng_state": self._rng.bit_generator.state,
            "approx_value": self._approx_value,
            "base_graph": self._base_graph,
            "graph": None if self._graph is self._base_graph else self._graph,
            "delta_log": self._delta_log.state_dict(),
            "fingerprints": {
                "result": self._fp_result,
                "current": self._fp_current,
            },
        }

    def restore_state(self, state: Mapping[str, object]) -> "CutEngine":
        """Restore a :meth:`snapshot_state` capture, verifying it.

        The fingerprint chain is **recomputed** from the restored base
        graph, rng position, and parameters — not trusted from the
        snapshot — and the delta chain is re-derived from the recorded
        per-delta hashes; any head that disagrees with the snapshot's
        raises a typed :class:`~repro.errors.RecoveryError` instead of
        booting an engine that answers for a graph nobody built.
        """
        if state.get("version") != 1:
            raise RecoveryError(
                f"engine snapshot has state version {state.get('version')!r}; "
                "this build restores version 1"
            )
        if state.get("params_key") != repr(self.params):
            raise RecoveryError(
                "engine snapshot was taken under different pipeline "
                "parameters; refusing to restore a chimera engine"
            )
        fps = dict(state["fingerprints"])
        self._approx_value = state["approx_value"]
        self._rng.bit_generator.state = state["state0"]
        # _bind increments the epoch and recomputes the whole chain from
        # the base graph + rng position; seed it one below the saved epoch
        self._epoch = int(state["epoch"]) - 1
        self._bind(state["base_graph"])
        if self._fp_result != fps["result"]:
            raise RecoveryError(
                "restored engine's recomputed artifact chain does not match "
                f"the snapshot (result fingerprint {self._fp_result[:12]}... "
                f"!= {str(fps['result'])[:12]}...)"
            )
        log_state = dict(state["delta_log"])
        recomputed = self._delta_log.restore(log_state)
        if recomputed != log_state["fingerprint"]:
            raise RecoveryError(
                "restored delta log's recomputed chain head does not match "
                "its own recorded head (snapshot corrupt or tampered)"
            )
        self._fp_current = recomputed if len(self._delta_log) else self._fp_result
        if self._fp_current != fps["current"]:
            raise RecoveryError(
                "restored engine's delta-chain fingerprint does not match "
                f"the snapshot ({self._fp_current[:12]}... != "
                f"{str(fps['current'])[:12]}...)"
            )
        graph = state["graph"]
        self._graph = self._base_graph if graph is None else graph
        self._rng.bit_generator.state = state["rng_state"]
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CutEngine(n={self._graph.n}, m={self._graph.m}, "
            f"max_trees={self._max_trees}, cache={self.cache!r})"
        )
