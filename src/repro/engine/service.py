"""The staged cut engine: preprocess once, answer many queries.

:class:`CutEngine` binds a graph, a randomness stream, and one
:class:`~repro.params.CutPipelineParams` bundle, then runs the exact
pipeline of :mod:`repro.engine.stages` with every preprocessing stage
producing a frozen, fingerprinted artifact in an
:class:`~repro.engine.cache.ArtifactCache`:

========  ==========================================  ==================
stage     artifact                                    depends on
========  ==========================================  ==================
validate  :class:`~repro.engine.artifacts.ValidationArtifact`   graph bytes
approx    :class:`~repro.engine.artifacts.ApproxArtifact`       + seed, hierarchy params
forest    :class:`~repro.engine.artifacts.PackedForest`         + skeleton params, packing iterations
index     :class:`~repro.engine.artifacts.TreeIndex`            + max_trees
========  ==========================================  ==================

Because the cache key *is* the dependency fingerprint, invalidation is
deterministic: change the graph, the seed, or a parameter a stage
depends on and the next query simply misses and rebuilds — nothing is
ever served stale.

**Parity.** A cold :meth:`min_cut` runs exactly the stage functions
(and consumes exactly the rng draws, via the per-artifact generator
snapshots) that one-shot :func:`repro.minimum_cut` runs, so its value,
side, stats, and ledger charges are bit-identical — by construction,
and pinned across executor backends in ``tests/test_engine.py``.  A
*warm* query replays the cached artifacts and charges the ledger only
for the per-query 2-respecting search.

**Batch.** :meth:`min_cut_batch` preprocesses once, then fans the
independent per-seed queries (tree selection + search) through
:func:`repro.pram.executor.parallel_map` on the active backend, each on
a private :class:`~repro.pram.ledger.Ledger` absorbed with the
fork-join rule (:meth:`~repro.pram.ledger.Ledger.absorb_parallel`) —
so the batch's depth reflects the logical parallelism while work sums.

**Requery.** :meth:`requery` answers "the weights moved a little, what
is the cut now?" without re-packing: the tree-packing argument keeps
the cached candidate trees valid while the perturbed minimum cut stays
within the packing's coverage (~3× the stored underestimate); past that
threshold the engine rebases onto the perturbed graph and preprocesses
it afresh.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Literal, Mapping, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.engine.artifacts import (
    ApproxArtifact,
    PackedForest,
    TreeIndex,
    ValidationArtifact,
    combine_fingerprint,
    graph_fingerprint,
)
from repro.engine.cache import ArtifactCache
from repro.engine.stages import (
    approximate_stage,
    assemble_result,
    branching_for_epsilon,
    cut_from_payload,
    cut_to_payload,
    resolve_max_trees,
    search_stage,
    validate_stage,
)
from repro.errors import InvalidParameterError
from repro.graphs.graph import Graph
from repro.packing.karger import build_cut_skeleton, pack_skeleton, select_trees
from repro.params import CutPipelineParams
from repro.pram.executor import parallel_map
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.results import CutResult
from repro.sparsify.hierarchy import HierarchyParams
from repro.sparsify.skeleton import SkeletonParams

__all__ = ["CutEngine"]

#: seed accepted anywhere NumPy's ``default_rng`` accepts one
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def _batch_search(context, seed) -> tuple:
    """One batch query: select this seed's candidate trees from the
    shared packing and run the 2-respecting search.

    Module-level so the process backend can pickle it by reference.
    ``context`` is the per-batch broadcast ``(graph, packing, max_trees,
    branching, decomposition)``, crossing the pool boundary once per
    dispatch — installed by a pool initializer on the process backend,
    attached as a zero-copy shared-memory view on the shm backend —
    while each task carries only its seed.  The returned candidate is a
    payload dict (``CutResult.stats`` is a MappingProxyType, which
    pickle refuses) plus the branch's private ledger for the caller to
    absorb.  Tracing is suppressed inside the worker — concurrent
    branches would race the tracer's span stack.
    """
    graph, packing, max_trees, branching, decomposition = context
    with obs.suppress_tracing():
        led = Ledger()
        parents = select_trees(packing, max_trees, np.random.default_rng(seed))
        best = search_stage(
            graph,
            parents,
            branching=branching,
            decomposition=decomposition,
            ledger=led,
        )
    return cut_to_payload(best), float(len(parents)), led


class CutEngine:
    """Staged minimum-cut service over one graph.

    Parameters
    ----------
    graph:
        The bound input.  :meth:`requery` evaluates perturbed weights
        against it; :meth:`rebase` re-points the engine.
    seed, rng:
        The engine's randomness stream (mutually exclusive).  Passing a
        shared ``rng`` consumes it exactly as the one-shot pipeline
        would — callers threading one generator through many calls
        (e.g. the clustering app) stay bit-identical.
    epsilon, max_trees, decomposition, skeleton_params, hierarchy_params,
    packing_iterations, pipeline:
        The pipeline knobs, same spelling as :func:`repro.minimum_cut`
        (see :class:`repro.params.CutPipelineParams`).
    approx_value:
        A known O(1)-approximation; skips the Section 3 stage.
    ledger:
        Work/depth sink for every stage this engine runs.  Cached
        (warm) stages charge nothing — that is the engine's point.
    cache:
        The artifact store; defaults to a private
        :class:`~repro.engine.cache.ArtifactCache`.  Pass a shared one
        to amortize across engines (single-threaded use only).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        seed: SeedLike = None,
        rng: Optional[np.random.Generator] = None,
        epsilon: Optional[float] = None,
        approx_value: Optional[float] = None,
        max_trees: "int | None | Literal['auto']" = "auto",
        decomposition: Literal["heavy", "bough"] = "heavy",
        skeleton_params: SkeletonParams = SkeletonParams(),
        hierarchy_params: Optional[HierarchyParams] = None,
        packing_iterations: Optional[int] = None,
        pipeline: Optional[CutPipelineParams] = None,
        ledger: Ledger = NULL_LEDGER,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        if rng is not None and seed is not None:
            raise InvalidParameterError("pass seed= or rng=, not both")
        self.params = CutPipelineParams.resolve(
            pipeline,
            epsilon=epsilon,
            max_trees=max_trees,
            decomposition=decomposition,
            skeleton=skeleton_params,
            hierarchy=hierarchy_params,
            packing_iterations=packing_iterations,
        )
        self.ledger = ledger
        self.cache = cache if cache is not None else ArtifactCache()
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._approx_value = None if approx_value is None else float(approx_value)
        self._bind(graph)

    # ------------------------------------------------------------------
    # binding and fingerprints
    # ------------------------------------------------------------------
    def _bind(self, graph: Graph) -> None:
        """(Re)point the engine at ``graph``: rebuild the fingerprint
        chain and snapshot the rng position cold stages replay from."""
        self._graph = graph
        self._state0 = self._rng.bit_generator.state
        gfp = graph_fingerprint(graph)
        self._fp_validate = gfp
        self._fp_approx = combine_fingerprint(
            "approximate", gfp, self._state0, self.params.hierarchy, self._approx_value
        )
        self._fp_forest = combine_fingerprint(
            "forest",
            self._fp_approx,
            self.params.skeleton,
            self.params.packing_iterations,
        )
        self._max_trees = resolve_max_trees(self.params.max_trees, graph.n)
        self._fp_index = combine_fingerprint("index", self._fp_forest, self._max_trees)
        # the assembled-answer memo: the per-query search is a pure
        # function of the index artifact plus (epsilon, decomposition),
        # so the final CutResult may itself be cached and replayed
        self._fp_result = combine_fingerprint(
            "result", self._fp_index, self.params.epsilon, self.params.decomposition
        )

    @property
    def graph(self) -> Graph:
        """The currently bound input graph."""
        return self._graph

    def rebase(self, graph: Graph) -> "CutEngine":
        """Re-point the engine at ``graph``; later queries preprocess it
        afresh (old artifacts stay cached under their own fingerprints,
        so rebasing back is warm)."""
        self._bind(graph)
        return self

    # ------------------------------------------------------------------
    # stage runners (cache-through)
    # ------------------------------------------------------------------
    def _validated(self) -> ValidationArtifact:
        art = self.cache.get("validate", self._fp_validate)
        if art is None:
            obs.counters().add("engine.stage_runs")
            art = ValidationArtifact(self._fp_validate, validate_stage(self._graph))
            self.cache.put("validate", self._fp_validate, art)
        return art

    def _approximated(self, ledger: Ledger) -> ApproxArtifact:
        art = self.cache.get("approximate", self._fp_approx)
        if art is None:
            obs.counters().add("engine.stage_runs")
            if self._approx_value is not None:
                art = ApproxArtifact(self._fp_approx, self._approx_value, self._state0)
            else:
                self._rng.bit_generator.state = self._state0
                value = approximate_stage(self._graph, self.params, self._rng, ledger)
                art = ApproxArtifact(
                    self._fp_approx, value, self._rng.bit_generator.state
                )
            self.cache.put("approximate", self._fp_approx, art)
        return art

    def _forest(self, ledger: Ledger) -> PackedForest:
        art = self.cache.get("forest", self._fp_forest)
        if art is None:
            approx = self._approximated(ledger)
            obs.counters().add("engine.stage_runs")
            if approx.rng_state is not None:
                self._rng.bit_generator.state = approx.rng_state
            with obs.phase("packing", ledger):
                skel = build_cut_skeleton(
                    self._graph,
                    approx.lambda_underestimate,
                    skeleton_params=self.params.skeleton,
                    rng=self._rng,
                    ledger=ledger,
                )
                packing = pack_skeleton(
                    skel,
                    packing_iterations=self.params.packing_iterations,
                    ledger=ledger,
                )
            art = PackedForest(
                self._fp_forest,
                packing,
                float(skel.skeleton.m),
                float(skel.p),
                self._rng.bit_generator.state,
            )
            self.cache.put("forest", self._fp_forest, art)
        return art

    def _indexed(self, ledger: Ledger) -> TreeIndex:
        art = self.cache.get("index", self._fp_index)
        if art is None:
            forest = self._forest(ledger)
            obs.counters().add("engine.stage_runs")
            if forest.rng_state is not None:
                self._rng.bit_generator.state = forest.rng_state
            with obs.phase("packing", ledger):
                parents = select_trees(forest.packing, self._max_trees, self._rng)
            stats = {
                "num_trees": float(len(parents)),
                "skeleton_edges": forest.skeleton_edges,
                "skeleton_p": forest.skeleton_p,
                "packing_iterations": float(forest.packing.iterations),
            }
            art = TreeIndex(
                self._fp_index,
                tuple(parents),
                stats,
                self._rng.bit_generator.state,
            )
            self.cache.put("index", self._fp_index, art)
        return art

    def warm(self) -> "CutEngine":
        """Build (or verify cached) every preprocessing artifact now, so
        later queries charge only the search."""
        if self._validated().early is None:
            self._indexed(self.ledger)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def min_cut(self, *, trace: bool = False) -> CutResult:
        """The bound graph's minimum cut, w.h.p. exact.

        Cold calls charge the full pipeline to the engine's ledger and
        are bit-identical to :func:`repro.minimum_cut` with the same
        inputs; warm calls replay cached artifacts and charge only the
        2-respecting search.
        """
        if trace and not obs.tracing_active():
            ledger = self.ledger if self.ledger is not NULL_LEDGER else Ledger()
            tracer = obs.Tracer(ledger=ledger)
            with tracer.activate():
                res = self._query(ledger)
            report = tracer.report(
                algorithm="engine.min_cut", n=self._graph.n, m=self._graph.m
            )
            return dataclasses.replace(res, report=report)
        return self._query(self.ledger)

    def _query(self, ledger: Ledger) -> CutResult:
        obs.counters().add("engine.queries")
        val = self._validated()
        if val.early is not None:
            return val.early
        approx = self._approximated(ledger)
        index = self._indexed(ledger)
        branching = branching_for_epsilon(self._graph.n, self.params.epsilon)
        best = search_stage(
            self._graph,
            list(index.tree_parents),
            branching=branching,
            decomposition=self.params.decomposition,
            ledger=ledger,
        )
        res = assemble_result(
            best, dict(index.packing_stats), approx.lambda_underestimate, branching
        )
        self.cache.put("result", self._fp_result, res)
        return res

    def min_cut_batch(
        self, seeds: Sequence[SeedLike], *, trace: bool = False
    ) -> List[CutResult]:
        """Independent minimum-cut queries, one per seed, in seed order.

        Preprocessing (approximation, skeleton, greedy packing) runs —
        and charges the ledger — **once**; each seed then drives its own
        candidate-tree selection and 2-respecting search, fanned through
        :func:`repro.pram.executor.parallel_map` on the active executor
        backend.  Per-query ledgers are absorbed with the fork-join rule
        (work sums, depth maxes), so the batch is accounted as one
        parallel round of searches.
        """
        seeds = list(seeds)
        if not seeds:
            return []
        reg = obs.counters()
        if reg.enabled:
            reg.add("engine.batch_queries")
            reg.add("engine.queries", float(len(seeds)))
        if trace and not obs.tracing_active():
            ledger = self.ledger if self.ledger is not NULL_LEDGER else Ledger()
            tracer = obs.Tracer(ledger=ledger)
            with tracer.activate():
                results = self._batch_impl(seeds, ledger)
            report = tracer.report(
                algorithm="engine.min_cut_batch",
                n=self._graph.n,
                m=self._graph.m,
                batch=len(seeds),
            )
            return [dataclasses.replace(r, report=report) for r in results]
        return self._batch_impl(seeds, self.ledger)

    def _batch_impl(self, seeds: List[SeedLike], ledger: Ledger) -> List[CutResult]:
        val = self._validated()
        if val.early is not None:
            return [val.early for _ in seeds]
        approx = self._approximated(ledger)
        forest = self._forest(ledger)
        branching = branching_for_epsilon(self._graph.n, self.params.epsilon)
        # the immutable per-batch payload travels as a broadcast context
        # (pickled once / published once into shared memory), keyed by
        # the forest fingerprint so repeated batches on the same engine
        # reuse the live publication; tasks are bare seeds
        context = (
            self._graph,
            forest.packing,
            self._max_trees,
            branching,
            self.params.decomposition,
        )
        context_key = combine_fingerprint(
            "batch-ctx", self._fp_forest, self._max_trees, branching,
            self.params.decomposition,
        )
        with obs.phase("batch-search", ledger):
            outcomes = parallel_map(
                _batch_search, seeds, context=context, context_key=context_key
            )
        ledger.absorb_parallel(*(led for _, _, led in outcomes))
        results = []
        for payload, num_trees, _ in outcomes:
            stats = {
                "num_trees": num_trees,
                "skeleton_edges": forest.skeleton_edges,
                "skeleton_p": forest.skeleton_p,
                "packing_iterations": float(forest.packing.iterations),
            }
            results.append(
                assemble_result(
                    cut_from_payload(payload),
                    stats,
                    approx.lambda_underestimate,
                    branching,
                )
            )
        return results

    def requery(
        self,
        weights: Union[Mapping[int, float], Iterable[float], np.ndarray],
        *,
        rebase_threshold: Optional[float] = 3.0,
    ) -> CutResult:
        """Minimum cut of the bound topology under perturbed weights.

        ``weights`` is either a full length-``m`` weight vector or a
        sparse ``{edge index: new weight}`` mapping over the bound
        graph's edge order (weights must stay positive — removing an
        edge is a :meth:`rebase` onto a new topology, not an update).  The cached packed trees are *reused* — only
        the per-query 2-respecting search runs — which stays exact
        w.h.p. while the perturbed minimum cut remains within the
        packing's coverage.  When the returned value exceeds
        ``rebase_threshold`` × the stored underestimate (the coverage
        edge; ``None`` disables the check), the engine rebases onto the
        perturbed graph and answers with a fresh cold run instead.
        Results carry ``stats["requery"] = 1.0`` (and ``"rebased"`` when
        the threshold fired).

        A perturbation whose deltas are all zero (an empty mapping, a
        mapping restating current weights, or the bound weight vector
        itself) is answered from the cached result memo — a pure cache
        hit that charges nothing and never consults the rebase
        threshold (``engine.requery_noops`` counts these).
        """
        reg = obs.counters()
        reg.add("engine.requeries")
        if isinstance(weights, Mapping):
            w = np.array(self._graph.w, dtype=np.float64, copy=True)
            for idx, value in weights.items():
                w[int(idx)] = value
        else:
            w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights)
        if w.shape == self._graph.w.shape and np.array_equal(w, self._graph.w):
            # all-zero delta: the bound graph's own answer.  Serve it as
            # a pure cache hit — no perturbed search, and in particular
            # no rebase-threshold accounting (a tight threshold must not
            # rebase the engine onto an identical graph).
            reg.add("engine.requery_noops")
            res = self.cache.get("result", self._fp_result)
            if res is None:
                res = self.min_cut()
            return dataclasses.replace(
                res, stats={**dict(res.stats), "requery": 1.0}
            )
        # drop_zero=False keeps the edge indexing stable (and makes a
        # zero weight a hard GraphFormatError instead of a silent drop
        # that would shift every later sparse update's indices)
        perturbed = self._graph.with_weights(w, drop_zero=False)
        early = validate_stage(perturbed)
        if early is not None:
            return dataclasses.replace(
                early, stats={**dict(early.stats), "requery": 1.0}
            )
        ledger = self.ledger
        approx = self._approximated(ledger)
        index = self._indexed(ledger)
        branching = branching_for_epsilon(perturbed.n, self.params.epsilon)
        best = search_stage(
            perturbed,
            list(index.tree_parents),
            branching=branching,
            decomposition=self.params.decomposition,
            ledger=ledger,
        )
        res = assemble_result(
            best, dict(index.packing_stats), approx.lambda_underestimate, branching
        )
        if (
            rebase_threshold is not None
            and res.value > rebase_threshold * approx.lambda_underestimate
        ):
            # the packing no longer certifiably covers the minimum cut:
            # re-point the engine at the perturbed graph and go cold
            reg.add("engine.rebases")
            self.rebase(perturbed)
            fresh = self.min_cut()
            return dataclasses.replace(
                fresh,
                stats={**dict(fresh.stats), "requery": 1.0, "rebased": 1.0},
            )
        return dataclasses.replace(res, stats={**dict(res.stats), "requery": 1.0})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CutEngine(n={self._graph.n}, m={self._graph.m}, "
            f"max_trees={self._max_trees}, cache={self.cache!r})"
        )
