"""The engine's artifact store: hash-keyed, size-bounded, LRU-evicted.

Keys are ``(stage, fingerprint)`` pairs where the fingerprint already
encodes every input the stage depends on (graph bytes, seed, the
relevant parameter subset — see :mod:`repro.engine.artifacts`), so
**invalidation is deterministic and automatic**: a changed input hashes
to a different key and simply misses; the stale entry ages out by LRU.
There is no time-based expiry and no mutation of stored artifacts —
they are frozen values, shared freely between engines.

The cache is bounded both by entry count and by (estimated) bytes; the
per-artifact estimate is each artifact's ``nbytes`` property.  Hits,
misses, and evictions are counted on the ambient
:mod:`repro.obs` registry (``engine.cache_hits`` / ``_misses`` /
``_evictions``) and mirrored on :attr:`ArtifactCache.stats` for
callers without a tracer.

A single :class:`ArtifactCache` may back many
:class:`repro.engine.CutEngine` instances (e.g. the recursive
clustering app shares one across every induced subgraph, and the
:mod:`repro.serve` daemon shares one per tenant across that tenant's
engines).  Every public operation holds an internal re-entrant lock, so
concurrent readers and writers see a consistent LRU order, size total,
and stats — the hammer test in ``tests/test_engine.py`` drives mixed
get/put/invalidate traffic from many threads and checks the bounds
still hold.  Artifacts themselves are frozen values, so a hit may be
used outside the lock freely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.obs.counters import counters

__all__ = ["ArtifactCache"]

#: cache key: (stage name, input fingerprint)
Key = Tuple[str, str]


class ArtifactCache:
    """Size-bounded LRU map from ``(stage, fingerprint)`` to artifacts.

    Parameters
    ----------
    max_entries:
        Entry-count bound (>= 1).
    max_bytes:
        Estimated-size bound; inserting an artifact evicts least-recently
        used entries until both bounds hold.  An artifact larger than the
        whole budget is stored alone (the bound is best-effort, not a
        hard ceiling, so the engine never thrashes on one big forest).
    """

    def __init__(self, max_entries: int = 128, max_bytes: int = 256 * 2**20) -> None:
        if max_entries < 1:
            raise InvalidParameterError("max_entries must be >= 1")
        if max_bytes < 1:
            raise InvalidParameterError("max_bytes must be >= 1")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Key, object]" = OrderedDict()
        self._sizes: Dict[Key, int] = {}
        self.current_bytes = 0
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}
        # re-entrant: counters().add may re-enter via instrumented hooks,
        # and invalidate() is callable from an eviction-observing thread
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def get(self, stage: str, fingerprint: str) -> Optional[object]:
        """The cached artifact for ``(stage, fingerprint)`` or None,
        refreshing its recency on a hit."""
        key = (stage, fingerprint)
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self.stats["misses"] += 1
                counters().add("engine.cache_misses")
                return None
            self._entries.move_to_end(key)
            self.stats["hits"] += 1
            counters().add("engine.cache_hits")
            return artifact

    def put(self, stage: str, fingerprint: str, artifact: object) -> None:
        """Insert (or refresh) an artifact, evicting LRU entries as needed."""
        key = (stage, fingerprint)
        size = int(getattr(artifact, "nbytes", 64))
        with self._lock:
            if key in self._entries:
                self.current_bytes -= self._sizes[key]
                del self._entries[key]
            self._entries[key] = artifact
            self._sizes[key] = size
            self.current_bytes += size
            self._evict()

    def _evict(self) -> None:
        while len(self._entries) > self.max_entries or (
            self.current_bytes > self.max_bytes and len(self._entries) > 1
        ):
            key, _ = self._entries.popitem(last=False)
            self.current_bytes -= self._sizes.pop(key)
            self.stats["evictions"] += 1
            counters().add("engine.cache_evictions")

    # ------------------------------------------------------------------
    def invalidate(self, stage: Optional[str] = None) -> int:
        """Drop every entry (``stage=None``) or every entry of one stage;
        returns the number removed.  Rarely needed — fingerprint keys
        already invalidate deterministically — but useful to reclaim
        memory or force a rebuild."""
        with self._lock:
            if stage is None:
                n = len(self._entries)
                self._entries.clear()
                self._sizes.clear()
                self.current_bytes = 0
                return n
            doomed = [k for k in self._entries if k[0] == stage]
            for k in doomed:
                del self._entries[k]
                self.current_bytes -= self._sizes.pop(k)
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArtifactCache(entries={len(self._entries)}/{self.max_entries}, "
            f"bytes={self.current_bytes}, hits={self.stats['hits']}, "
            f"misses={self.stats['misses']})"
        )
