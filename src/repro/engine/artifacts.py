"""Frozen, fingerprinted artifacts produced by the engine's stages.

Each preprocessing stage of :class:`repro.engine.CutEngine` emits one
immutable value object carrying

* the stage's payload (approximation value, packed forest, candidate
  tree index, ...),
* the **fingerprint** of everything that determined it — so the
  :class:`repro.engine.ArtifactCache` key *is* the invalidation rule:
  change the graph, the seed, or a parameter the stage depends on and
  the key changes with it, deterministically — and
* the NumPy generator state **after** the stage ran, so a warm query
  resumes the randomness stream exactly where a cold run would be
  (the same mechanism checkpoint/resume uses; see
  :mod:`repro.resilience.checkpointing`).

Artifacts are plain data: building one never touches a ledger, and a
cached artifact replays into a query without charging the preprocessing
work again — that is the engine's entire point.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.packing.greedy import GreedyPacking
from repro.results import CutResult

__all__ = [
    "graph_fingerprint",
    "combine_fingerprint",
    "ValidationArtifact",
    "ApproxArtifact",
    "PackedForest",
    "TreeIndex",
]


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph: vertex count plus the exact edge arrays.

    Two graphs with the same fingerprint are byte-identical inputs to
    every stage; a single reweighted edge changes it.
    """
    h = hashlib.sha256()
    h.update(np.int64(graph.n).tobytes())
    h.update(np.int64(graph.m).tobytes())
    h.update(np.ascontiguousarray(graph.u).tobytes())
    h.update(np.ascontiguousarray(graph.v).tobytes())
    h.update(np.ascontiguousarray(graph.w).tobytes())
    return h.hexdigest()


def combine_fingerprint(*parts: object) -> str:
    """Hash a tuple of fingerprint strings / reprs into one key."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def _rng_nbytes(state: Optional[dict]) -> int:
    # a PCG64 state dict is a few ints; charge a flat token
    return 0 if state is None else 128


class _ShmArtifact:
    """Shared-memory publication for fingerprinted artifacts.

    ``to_shm`` publishes the artifact into the process-wide
    :class:`repro.shm.arena.ShmArena` under a key derived from the
    artifact's own fingerprint, so republishing the same artifact (same
    fingerprint chain) reuses the live segment instead of re-encoding.
    The returned :class:`repro.shm.ShmRef` is the hand-off ticket:
    cheaply picklable, attachable from any worker via ``from_shm``.
    The publisher owns one reference and must balance each ``to_shm``
    with :func:`repro.shm.release_object` when done.
    """

    fingerprint: str  # provided by each dataclass

    def to_shm(self):
        from repro.shm import publish_object

        key = combine_fingerprint("artifact", type(self).__name__, self.fingerprint)
        return publish_object(key, self)

    @classmethod
    def from_shm(cls, ref):
        from repro.shm import fetch_object

        obj, _fresh = fetch_object(ref)
        if not isinstance(obj, cls):
            raise TypeError(
                f"segment {ref.segment!r} holds {type(obj).__name__}, "
                f"expected {cls.__name__}"
            )
        return obj


@dataclass(frozen=True)
class ValidationArtifact:
    """Outcome of the ``validate`` stage.

    ``early`` carries the finished result for degenerate inputs
    (disconnected, two vertices); None means the full pipeline runs.
    """

    fingerprint: str
    early: Optional[CutResult] = None

    @property
    def nbytes(self) -> int:
        if self.early is None:
            return 64
        return 64 + int(self.early.side.nbytes)


@dataclass(frozen=True)
class ApproxArtifact:
    """Output of the ``approximate`` stage: the Theorem 3.1 estimate
    (already floored away from zero) plus the post-stage rng state."""

    fingerprint: str
    approx_value: float
    rng_state: Optional[dict] = None

    @property
    def lambda_underestimate(self) -> float:
        """Section 4.2's packing underestimate: half the approximation."""
        return float(self.approx_value) / 2.0

    @property
    def nbytes(self) -> int:
        return 64 + _rng_nbytes(self.rng_state)


@dataclass(frozen=True)
class PackedForest(_ShmArtifact):
    """Output of the ``sparsify`` + ``pack`` stages: the greedy tree
    packing of the skeleton, with the skeleton's summary statistics.

    This is the expensive artifact the whole engine exists to amortize:
    every distinct packed tree, reusable across queries and (per the
    tree-packing argument) across modest weight perturbations.
    """

    fingerprint: str
    packing: GreedyPacking
    skeleton_edges: float
    skeleton_p: float
    rng_state: Optional[dict] = None

    @property
    def nbytes(self) -> int:
        g = self.packing.graph
        edges = int(g.u.nbytes + g.v.nbytes + g.w.nbytes)
        trees = sum(int(np.asarray(t).nbytes) for t in self.packing.trees)
        return 64 + edges + trees + _rng_nbytes(self.rng_state)


@dataclass(frozen=True)
class TreeIndex(_ShmArtifact):
    """Output of the ``index`` stage: the materialized candidate parent
    arrays the 2-respecting search queries, plus the packing statistics
    that flow into every result's ``stats``."""

    fingerprint: str
    tree_parents: Tuple[np.ndarray, ...] = field(default_factory=tuple)
    packing_stats: dict = field(default_factory=dict)
    rng_state: Optional[dict] = None

    @property
    def num_trees(self) -> int:
        return len(self.tree_parents)

    @property
    def nbytes(self) -> int:
        return (
            64
            + sum(int(p.nbytes) for p in self.tree_parents)
            + _rng_nbytes(self.rng_state)
        )
