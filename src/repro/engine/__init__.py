"""The staged cut engine (preprocess once, answer many queries).

Layout:

* :mod:`repro.engine.stages` — the exact pipeline's stage functions,
  defined once; :func:`~repro.engine.stages.run_pipeline` is the
  one-shot composition behind :func:`repro.minimum_cut` and the
  resilient driver;
* :mod:`repro.engine.artifacts` — frozen, fingerprinted stage outputs;
* :mod:`repro.engine.cache` — the size-bounded, hash-keyed
  :class:`ArtifactCache`;
* :mod:`repro.engine.service` — :class:`CutEngine`: ``min_cut()``,
  ``min_cut_batch(seeds)``, ``requery(weights)``.

See ``docs/architecture.md`` for the stage graph and the
cache-invalidation rules.
"""

from repro.engine.artifacts import (
    ApproxArtifact,
    PackedForest,
    TreeIndex,
    ValidationArtifact,
    combine_fingerprint,
    graph_fingerprint,
)
from repro.engine.cache import ArtifactCache
from repro.engine.service import CutEngine
from repro.engine.stages import run_pipeline

__all__ = [
    "CutEngine",
    "ArtifactCache",
    "ValidationArtifact",
    "ApproxArtifact",
    "PackedForest",
    "TreeIndex",
    "graph_fingerprint",
    "combine_fingerprint",
    "run_pipeline",
]
