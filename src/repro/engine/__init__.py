"""The staged cut engine (preprocess once, answer many queries).

Layout:

* :mod:`repro.engine.stages` — the exact pipeline's stage functions,
  defined once; :func:`~repro.engine.stages.run_pipeline` is the
  one-shot composition behind :func:`repro.minimum_cut` and the
  resilient driver;
* :mod:`repro.engine.artifacts` — frozen, fingerprinted stage outputs;
* :mod:`repro.engine.cache` — the size-bounded, hash-keyed
  :class:`ArtifactCache`;
* :mod:`repro.engine.deltas` — :class:`GraphDelta`/:class:`DeltaLog`:
  the validated edge-mutation batches ``CutEngine.update`` layers
  over the base artifact chain, plus :class:`UpdateResult`;
* :mod:`repro.engine.service` — :class:`CutEngine`: ``min_cut()``,
  ``min_cut_batch(seeds)``, ``update(add_edges=..., remove_edges=...,
  reweight=...)``, and the ``snapshot_state``/``restore_state`` pair
  :mod:`repro.durability` persists engines through.

See ``docs/architecture.md`` for the stage graph and the
cache-invalidation rules.
"""

from repro.engine.artifacts import (
    ApproxArtifact,
    PackedForest,
    TreeIndex,
    ValidationArtifact,
    combine_fingerprint,
    graph_fingerprint,
)
from repro.engine.cache import ArtifactCache
from repro.engine.deltas import DeltaLog, GraphDelta, UpdateResult, as_delta, random_delta
from repro.engine.service import CutEngine
from repro.engine.stages import run_pipeline

__all__ = [
    "CutEngine",
    "GraphDelta",
    "DeltaLog",
    "UpdateResult",
    "as_delta",
    "random_delta",
    "ArtifactCache",
    "ValidationArtifact",
    "ApproxArtifact",
    "PackedForest",
    "TreeIndex",
    "graph_fingerprint",
    "combine_fingerprint",
    "run_pipeline",
]
