"""Phase spans: the structured timeline of one pipeline run.

A :class:`Span` is one named interval of a run — ``approximate``,
``packing``, ``oracle-build``, one resilient attempt, ... — recording

* **wall clock** (seconds relative to the tracer's epoch),
* **ledger deltas** (work/depth consumed between entry and exit, read
  from the tracer's bound :class:`~repro.pram.ledger.Ledger`), and
* **counter deltas** (nonzero increments of the tracer's
  :class:`~repro.obs.counters.CounterRegistry` inside the span).

Spans nest into a tree via the context-manager API::

    tracer = Tracer(ledger=ledger)
    with tracer.activate():
        with tracer.span("packing"):
            ...
    report = tracer.report()

Library code never holds a tracer: it opens spans on the *ambient*
tracer (:func:`current_tracer`), which is a no-op singleton unless a
caller activated one — so un-traced runs pay one contextvar read and a
constant-folded ``with`` per phase.  The :func:`phase` helper bundles
the ambient span with the matching :meth:`Ledger.phase` attribution so
drivers instrument both with one line.

Spans observe the ledger; they never charge it.  Work/depth accounting
of a traced run is bit-identical to an untraced one (enforced by
``tests/test_obs.py``).

Parallelism caveat: branches of ``ledger.parallel()`` execute (and are
traced) sequentially in Python — logically-parallel spans appear one
after another on the wall-clock axis, while their *ledger* depth deltas
still reflect the fork/join semantics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.obs.counters import NULL_COUNTERS, CounterRegistry, counting_scope
from repro.pram.ledger import NULL_LEDGER, Ledger

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "tracing_active",
    "phase",
    "suppress_tracing",
]


@dataclass
class Span:
    """One closed (or still-open) interval of the run's timeline."""

    name: str
    #: wall seconds relative to the tracer's epoch
    wall_start: float = 0.0
    wall_end: Optional[float] = None
    work_start: float = 0.0
    depth_start: float = 0.0
    work_end: float = 0.0
    depth_end: float = 0.0
    #: nonzero counter increments recorded inside this span
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def wall_s(self) -> float:
        """Wall seconds spent in the span (0.0 while still open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def work(self) -> float:
        """Ledger work charged while the span was open."""
        return self.work_end - self.work_start

    @property
    def depth(self) -> float:
        """Ledger depth-clock advance while the span was open."""
        return self.depth_end - self.depth_start

    def child_work(self) -> float:
        """Sum of the direct children's work deltas."""
        return sum(c.work for c in self.children)

    def self_work(self) -> float:
        """Work charged in this span outside any child span."""
        return self.work - self.child_work()

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(self, name: str) -> List["Span"]:
        """Every descendant span (preorder, self included) named ``name``."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, wall={self.wall_s:.4f}s, "
            f"work={self.work:g}, depth={self.depth:g}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Builds the span tree of one run.

    Parameters
    ----------
    ledger:
        The ledger the traced computation charges; spans snapshot its
        ``(work, depth)`` at entry/exit.  Pass the same object you hand
        to the algorithms.  A :class:`~repro.pram.trace.TraceLedger`
        additionally lets the final report compute schedule bounds.
    clock:
        Monotonic-seconds source, injectable for deterministic tests.

    The implicit root span is named ``"run"``; :meth:`report` closes it
    and freezes the tree into a :class:`~repro.obs.report.RunReport`.
    """

    __slots__ = ("ledger", "registry", "root", "_stack", "_clock", "_epoch")

    def __init__(
        self,
        ledger: Optional[Ledger] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.registry = CounterRegistry()
        self._clock = clock
        self._epoch = clock()
        w, d = self.ledger.snapshot()
        self.root = Span("run", wall_start=0.0, work_start=w, depth_start=d)
        self._stack: List[Span] = [self.root]

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a child span of the innermost open span."""
        w, d = self.ledger.snapshot()
        node = Span(
            name,
            wall_start=self._clock() - self._epoch,
            work_start=w,
            depth_start=d,
        )
        csnap = self.registry.snapshot()
        self._stack[-1].children.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            popped = self._stack.pop()
            if popped is not node:  # pragma: no cover - defensive
                raise ReproError("span stack corrupted (overlapping exits)")
            node.wall_end = self._clock() - self._epoch
            node.work_end, node.depth_end = self.ledger.snapshot()
            node.counters = self.registry.delta_since(csnap)

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer (and its counter registry) ambient for the
        block, so library code's :func:`current_tracer` spans and
        :func:`repro.obs.counters.counters` increments land here."""
        token = _active_tracer.set(self)
        try:
            with counting_scope(self.registry):
                yield self
        finally:
            _active_tracer.reset(token)

    # ------------------------------------------------------------------
    def finish(self) -> Span:
        """Close the root span (idempotent) and return it."""
        if self._stack != [self.root]:
            raise ReproError("finish() with open spans on the stack")
        if self.root.wall_end is None:
            self.root.wall_end = self._clock() - self._epoch
            self.root.work_end, self.root.depth_end = self.ledger.snapshot()
            self.root.counters = self.registry.snapshot()
        return self.root

    def report(self, **meta: object):
        """Freeze the tree into a :class:`~repro.obs.report.RunReport`."""
        from repro.obs.report import RunReport

        root = self.finish()
        return RunReport.from_tracer_root(
            root, self.registry.snapshot(), ledger=self.ledger, meta=meta
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(spans={sum(1 for _ in self.root.walk())})"


# ----------------------------------------------------------------------
# the ambient tracer
# ----------------------------------------------------------------------
class _NullSpanContext:
    """Reusable, allocation-free stand-in for ``tracer.span(...)``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _NullTracer:
    """The ambient default: every span is a shared no-op context."""

    __slots__ = ()

    def span(self, name: str) -> _NullSpanContext:  # noqa: ARG002
        return _NULL_SPAN


NULL_TRACER = _NullTracer()

_active_tracer: ContextVar[object] = ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)


def current_tracer():
    """The tracer activated in the current context, or the shared no-op
    tracer (whose spans cost nothing) when none is."""
    return _active_tracer.get()


def tracing_active() -> bool:
    """True when a real :class:`Tracer` is ambient."""
    return _active_tracer.get() is not NULL_TRACER


@contextmanager
def suppress_tracing() -> Iterator[None]:
    """Force the no-op tracer (and the null counter registry) for the
    block.

    The span stack and counter map of an active :class:`Tracer` are
    single-writer structures; fan-out workers that inherit the ambient
    context (e.g. :func:`repro.pram.executor.parallel_map` branches)
    would interleave span exits and corrupt the stack.  Such workers
    wrap their bodies in this — their ledgers are still absorbed by the
    caller, so accounting survives; only the per-branch spans are
    dropped (matching the tracer's documented sequential-timeline
    model).
    """
    token = _active_tracer.set(NULL_TRACER)
    try:
        with counting_scope(NULL_COUNTERS):
            yield
    finally:
        _active_tracer.reset(token)


@contextmanager
def phase(name: str, ledger: Ledger = NULL_LEDGER) -> Iterator[None]:
    """One pipeline phase: ledger attribution + ambient span, together.

    Equivalent to nesting ``ledger.phase(name)`` around
    ``current_tracer().span(name)`` — the single line every driver uses
    to mark its stages::

        with obs.phase("packing", ledger):
            packing = pack_trees(...)

    With no tracer active this degrades to exactly the historical
    ``ledger.phase`` behaviour (plus one contextvar read).
    """
    with ledger.phase(name):
        with current_tracer().span(name):
            yield
