"""Structured observability: phase spans, a namespaced counter
registry, and Chrome-trace export for every pipeline run.

The three pieces (see ``docs/observability.md`` for the full model):

* :class:`Span` / :class:`Tracer` — a tree of named intervals, each
  recording wall clock, ledger work/depth deltas, and counter deltas
  (:mod:`repro.obs.span`);
* :class:`CounterRegistry` / :func:`counters` — one dot-namespaced
  counter map (``oracle.nodes_visited``, ``smawk.evals``,
  ``executor.retries``, ...) replacing the free-form stats dicts
  (:mod:`repro.obs.counters`);
* :class:`RunReport` — the frozen result, attached to
  :class:`~repro.results.CutResult` / :class:`~repro.results.ApproxResult`
  by ``trace=True`` runs and exportable with
  :meth:`~repro.obs.report.RunReport.write_trace`
  (:mod:`repro.obs.report`).

Quick start::

    import numpy as np, repro
    res = repro.minimum_cut(g, rng=np.random.default_rng(0), trace=True)
    for p in res.report.phases(top_level_only=True):
        print(p.name, p.wall_s, p.work)
    res.report.write_trace("run.json")   # open in chrome://tracing

Everything here is observation-only: spans and counters never charge
the ledger, so traced and untraced runs have bit-identical work/depth
accounting, and the disabled path (no tracer active) costs one
contextvar read per instrumentation site.
"""

from repro.obs.counters import (
    NULL_COUNTERS,
    CounterRegistry,
    counters,
    counting_scope,
)
from repro.obs.report import PhaseBreakdown, RunReport
from repro.obs.span import (
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    phase,
    suppress_tracing,
    tracing_active,
)

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "tracing_active",
    "phase",
    "suppress_tracing",
    "CounterRegistry",
    "counters",
    "counting_scope",
    "NULL_COUNTERS",
    "NULL_TRACER",
    "RunReport",
    "PhaseBreakdown",
]
