"""The :class:`RunReport`: one run's observability record, exportable
as a Chrome-trace-viewer JSON file.

A report freezes what the :class:`~repro.obs.span.Tracer` saw:

* the root :class:`~repro.obs.span.Span` (``"run"``) and its tree,
* the final counter registry snapshot,
* the run's ledger totals (the root span's work/depth deltas — by
  construction these equal the bound ledger's totals for a
  fresh-per-run ledger), and
* optional schedule bounds, when the run charged a
  :class:`~repro.pram.trace.TraceLedger`.

Trace-file format (``docs/observability.md`` documents the schema)::

    {
      "traceEvents": [ {"name", "cat", "ph": "X", "ts", "dur",
                        "pid", "tid", "args": {...}}, ... ],
      "displayTimeUnit": "ms",
      "repro": { "work", "depth", "counters", "meta", ... }
    }

Each span becomes one complete ("ph": "X") event with microsecond
``ts``/``dur`` and its ledger/counter deltas under ``args`` — load the
file in ``chrome://tracing`` / Perfetto to see the phase timeline.
Consumers that only want numbers read the ``repro`` sidecar object
(Chrome ignores unknown top-level keys).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.span import Span
from repro.pram.ledger import Ledger

__all__ = ["RunReport", "PhaseBreakdown"]

#: Chrome trace events use microseconds
_US = 1e6


@dataclass(frozen=True)
class PhaseBreakdown:
    """Aggregate of every span sharing one name (phases re-enter)."""

    name: str
    wall_s: float
    work: float
    depth: float
    count: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhaseBreakdown({self.name!r}, wall={self.wall_s:.4f}s, "
            f"work={self.work:g}, x{self.count})"
        )


@dataclass(frozen=True)
class RunReport:
    """Everything one run reported through the observability layer."""

    span: Span
    counters: Mapping[str, float]
    #: ledger totals over the whole run (root span deltas)
    work: float
    depth: float
    #: optional (lower, upper) makespan bounds per processor count, from
    #: a TraceLedger-backed run
    schedule_bounds: Mapping[int, Tuple[float, float]] = field(
        default_factory=dict
    )
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "counters", MappingProxyType(dict(self.counters)))
        object.__setattr__(
            self, "schedule_bounds", MappingProxyType(dict(self.schedule_bounds))
        )
        object.__setattr__(self, "meta", MappingProxyType(dict(self.meta)))

    # ------------------------------------------------------------------
    @classmethod
    def from_tracer_root(
        cls,
        root: Span,
        counters: Mapping[str, float],
        *,
        ledger: Optional[Ledger] = None,
        meta: Optional[Mapping[str, object]] = None,
        processors: Tuple[int, ...] = (2, 4, 16, 64),
    ) -> "RunReport":
        bounds: Dict[int, Tuple[float, float]] = {}
        from repro.pram.trace import TraceLedger

        if isinstance(ledger, TraceLedger):
            bounds = {p: ledger.bounds(p) for p in processors}
        return cls(
            span=root,
            counters=counters,
            work=root.work,
            depth=root.depth,
            schedule_bounds=bounds,
            meta=meta or {},
        )

    # ------------------------------------------------------------------
    # summarising
    # ------------------------------------------------------------------
    def phases(self, top_level_only: bool = False) -> List[PhaseBreakdown]:
        """Per-name aggregates, ordered by first appearance.

        ``top_level_only`` restricts to direct children of the root —
        the coarse pipeline stages whose ledger deltas partition the
        run's totals.
        """
        spans = self.span.children if top_level_only else list(self.span.walk())[1:]
        order: List[str] = []
        acc: Dict[str, List[float]] = {}
        for s in spans:
            if s.name not in acc:
                order.append(s.name)
                acc[s.name] = [0.0, 0.0, 0.0, 0]
            a = acc[s.name]
            a[0] += s.wall_s
            a[1] += s.work
            a[2] += s.depth
            a[3] += 1
        return [
            PhaseBreakdown(name, *acc[name][:3], count=int(acc[name][3]))
            for name in order
        ]

    def unattributed_work(self) -> float:
        """Run work not inside any top-level phase span."""
        return self.span.self_work()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def trace_events(self) -> List[dict]:
        """One Chrome complete-event per span (preorder)."""
        events = []
        for s in self.span.walk():
            end = s.wall_end if s.wall_end is not None else s.wall_start
            args: Dict[str, object] = {
                "work": s.work,
                "depth": s.depth,
            }
            if s.counters:
                args["counters"] = dict(sorted(s.counters.items()))
            events.append(
                {
                    "name": s.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(s.wall_start * _US, 3),
                    "dur": round((end - s.wall_start) * _US, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        return events

    def to_chrome_trace(self) -> dict:
        """The full trace-file payload (see module docstring)."""
        sidecar: Dict[str, object] = {
            "work": self.work,
            "depth": self.depth,
            "counters": dict(sorted(self.counters.items())),
            "phases": [
                {
                    "name": p.name,
                    "wall_s": round(p.wall_s, 6),
                    "work": p.work,
                    "depth": p.depth,
                    "count": p.count,
                }
                for p in self.phases()
            ],
            "meta": {k: str(v) for k, v in self.meta.items()},
        }
        if self.schedule_bounds:
            sidecar["schedule_bounds"] = {
                str(p): [lo, hi] for p, (lo, hi) in self.schedule_bounds.items()
            }
        return {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "repro": sidecar,
        }

    def write_trace(self, path: str | Path) -> Path:
        """Serialise :meth:`to_chrome_trace` to ``path`` as JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace(), indent=1) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunReport(wall={self.span.wall_s:.4f}s, work={self.work:g}, "
            f"depth={self.depth:g}, spans={sum(1 for _ in self.span.walk())}, "
            f"counters={len(self.counters)})"
        )
