"""One namespaced counter registry for the whole pipeline.

Before this module, run diagnostics were scattered across free-form
``CutResult.stats`` dicts, per-oracle visit counters, SMAWK lookup
counts, and resilience provenance fields — four shapes, none of which
could answer "where did the work go" for a whole run.  A
:class:`CounterRegistry` replaces the free-form dicts with one
dot-namespaced map that every layer increments through the ambient
:func:`counters` accessor.

Namespaces (the full catalogue lives in ``docs/observability.md``):

========================  =====================================================
``oracle.*``              cut-query oracle activity (``nodes_visited``,
                          ``queries``)
``smawk.*``               Monge-search entry evaluations (``evals``, ``calls``)
``kernels.*``             fast-path batch drivers (``batch_calls``,
                          ``batch_entries``)
``tworespect.*``          per-tree search shape (``trees``,
                          ``interest_tuples``, ``interested_pairs``)
``executor.*``            real-parallel dispatch (``retries``, ``dispatches``)
``resilience.*``          budget/retry machinery (``checkpoints``,
                          ``attempts``, ``fallbacks``)
``supervisor.*``          executor health model (``degradations``,
                          ``failures``, ``probes``, ``recoveries``)
``checkpoint.*``          crash-resume persistence (``saves``,
                          ``resumes``, ``stage_loads``, ``finalized``)
``engine.*``              staged-engine queries and artifact cache
                          (``queries``, ``updates``, ``update_noops``,
                          ``rebases``, ``cache_hits``, ``cache_misses``)
``serve.*``               the cut-serving daemon's admission/shedding
                          ledger (``requests``, ``admitted``,
                          ``completed``, ``rejected_queue_full``,
                          ``rejected_inflight``, ``shed_queued``,
                          ``shed_inflight``, ``op.<op>``,
                          ``fault.<site>``; exposed by its ``metrics``
                          op — ``docs/service.md``)
========================  =====================================================

Cost model
----------
Counting is **off by default**: the ambient registry is a shared
:data:`NULL_COUNTERS` singleton whose :meth:`~CounterRegistry.add` is a
no-op ``pass``, so un-traced runs pay one contextvar read per
instrumentation site and nothing else.  Counters never touch the
:class:`~repro.pram.ledger.Ledger` — ledger parity between counted and
uncounted runs is bit-exact (``tests/test_obs.py``).

Hot loops should guard expensive *argument construction* behind the
``enabled`` flag::

    reg = counters()
    if reg.enabled:
        reg.add("oracle.nodes_visited", float(self.total_nodes_visited))
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Mapping

__all__ = ["CounterRegistry", "NULL_COUNTERS", "counters", "counting_scope"]


class CounterRegistry:
    """A flat map of dot-namespaced counter names to float totals."""

    __slots__ = ("_counts",)

    #: False on the shared null registry; callers may use this to skip
    #: computing expensive counter arguments.
    enabled = True

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment ``name`` by ``value`` (creating it at 0)."""
        self._counts[name] = self._counts.get(name, 0.0) + value

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counts.get(name, default)

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy of every counter."""
        return dict(self._counts)

    def delta_since(self, snap: Mapping[str, float]) -> Dict[str, float]:
        """Nonzero counter increments since ``snap`` (from :meth:`snapshot`)."""
        out = {}
        for name, value in self._counts.items():
            d = value - snap.get(name, 0.0)
            if d != 0.0:
                out[name] = d
        return out

    def namespaces(self) -> Dict[str, float]:
        """Totals aggregated by leading namespace component."""
        out: Dict[str, float] = {}
        for name, value in self._counts.items():
            ns = name.split(".", 1)[0]
            out[ns] = out.get(ns, 0.0) + value
        return out

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CounterRegistry({len(self._counts)} counters)"


class _NullCounterRegistry(CounterRegistry):
    """Discards all increments; the ambient default when not tracing."""

    __slots__ = ()

    enabled = False

    def add(self, name: str, value: float = 1.0) -> None:  # noqa: D102
        pass


#: Shared sink for un-instrumented contexts.  Never read its counters.
NULL_COUNTERS = _NullCounterRegistry()

_active: ContextVar[CounterRegistry] = ContextVar(
    "repro_obs_counters", default=NULL_COUNTERS
)


def counters() -> CounterRegistry:
    """The registry armed in the current context (:data:`NULL_COUNTERS`
    when no tracer / counting scope is active)."""
    return _active.get()


@contextmanager
def counting_scope(registry: CounterRegistry) -> Iterator[CounterRegistry]:
    """Arm ``registry`` as the ambient counter sink for the block.

    :meth:`repro.obs.Tracer.activate` does this automatically; use this
    directly to collect counters without building a span tree."""
    token = _active.set(registry)
    try:
        yield registry
    finally:
        _active.reset(token)
