"""Sparsification: skeletons, connectivity certificates, hierarchies."""

from repro.sparsify.certhierarchy import CertificateHierarchy, build_certificate_hierarchy
from repro.sparsify.certificate import certificate_forests, connectivity_certificate
from repro.sparsify.hierarchy import (
    HierarchyParams,
    TruncatedHierarchy,
    build_truncated_hierarchy,
)
from repro.sparsify.skeleton import SkeletonParams, SkeletonResult, build_skeleton

__all__ = [
    "SkeletonParams",
    "SkeletonResult",
    "build_skeleton",
    "connectivity_certificate",
    "certificate_forests",
    "HierarchyParams",
    "TruncatedHierarchy",
    "build_truncated_hierarchy",
    "CertificateHierarchy",
    "build_certificate_hierarchy",
]
