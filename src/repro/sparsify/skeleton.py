"""Skeleton construction (Theorem 2.4, Observation 4.22, Lemma 4.23).

A skeleton samples every unit copy of every edge with probability
``p = Theta(log n / lambda)``; the result has min-cut ``O(log n / eps^2)``
and preserves the original min-cut's partition up to (1 +- eps).  Two
paper-specific twists make it parallel-cheap:

* Observation 4.22: the sampled weight never needs to exceed the max
  possible skeleton min-cut, so the capped binomial sampler of
  :mod:`repro.primitives.random_bits` draws each edge in O(log n) work.
* Lemma 4.23 then bounds the skeleton's *total* weight via an
  O(log n)-connectivity certificate (:mod:`repro.sparsify.certificate`).

At test scale the paper's constants drive ``p`` to 1; the construction
then degrades gracefully: the "skeleton" is the input graph with weights
capped at the (still sound, because above the min-cut) cap — see
DESIGN.md section 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.random_bits import capped_binomial
from repro.resilience.faults import SITE_CORRUPT_SKELETON, poll as _poll_fault
from repro.sparsify.certificate import connectivity_certificate

__all__ = ["SkeletonParams", "SkeletonResult", "build_skeleton"]


@dataclass(frozen=True)
class SkeletonParams:
    """Tunable constants of the skeleton construction.

    ``sample_constant`` is the paper's ``3(d+2)/(eps^2 gamma)`` bundle:
    ``p = sample_constant * ln(n) / lambda``.  The paper-faithful value
    targets w.h.p. bounds at astronomic n; the default here is sized so
    the w.h.p. events hold empirically at benchmark scale.
    """

    sample_constant: float = 12.0
    epsilon: float = 1.0 / 3.0
    #: cap = cap_constant * expected skeleton min-cut; must exceed the
    #: skeleton min-cut for Observation 4.22's argument
    cap_constant: float = 3.0
    #: run the Nagamochi–Ibaraki sparsification after sampling
    certify: bool = True

    def sampling_probability(self, n: int, lam: float) -> float:
        if lam <= 0:
            return 1.0
        return min(1.0, self.sample_constant * math.log(max(n, 2)) / lam)

    def expected_skeleton_cut(self, n: int) -> float:
        return self.sample_constant * math.log(max(n, 2))

    def weight_cap(self, n: int) -> int:
        return int(math.ceil(self.cap_constant * self.expected_skeleton_cut(n))) + 2


@dataclass(frozen=True)
class SkeletonResult:
    """Skeleton + the bookkeeping needed to translate its cuts back."""

    skeleton: Graph
    #: per-unit-copy sampling probability actually used
    p: float
    #: cap applied to sampled weights (Observation 4.22)
    cap: int
    #: the underestimate the construction was based on
    lambda_underestimate: float

    def rescale_cut_value(self, skeleton_cut: float) -> float:
        """Estimate of the corresponding cut value in the original graph
        (divide by p; exact only in expectation)."""
        return skeleton_cut / self.p


def build_skeleton(
    graph: Graph,
    lambda_underestimate: float,
    params: SkeletonParams = SkeletonParams(),
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> SkeletonResult:
    """Lemma 4.23: skeleton + sparse certificate, O(m log n) work.

    Parameters
    ----------
    lambda_underestimate:
        A constant-factor *underestimate* of the min cut (e.g. half the
        Section 3 approximation).  Overestimates lose the w.h.p.
        guarantee of Theorem 2.4 (the skeleton gets too sparse).
    """
    rng = rng if rng is not None else np.random.default_rng()
    n = graph.n
    p = params.sampling_probability(n, lambda_underestimate)
    cap = params.weight_cap(n)
    if p >= 1.0:
        # sampling keeps everything: only the Obs. 4.22 cap applies, and
        # it is sound because cap > the (<= lambda-underestimate-derived)
        # skeleton min-cut bound
        w = np.minimum(graph.w, cap)
        ledger.charge(work=float(graph.m), depth=1.0)
        sampled = graph.with_weights(w)
    else:
        w_int = np.rint(graph.w)
        if not np.allclose(graph.w, w_int, rtol=0, atol=1e-9):
            # real weights: Poisson thinning has the same concentration
            # as binomial thinning and needs no unit-copy semantics
            counts = rng.poisson(graph.w * p)
            counts = np.minimum(counts, cap)
            ledger.charge(work=float(graph.m * log2ceil(max(cap, 2))), depth=float(log2ceil(max(cap, 2))))
        else:
            counts = capped_binomial(
                w_int.astype(np.int64), p, cap, rng, ledger=ledger
            )
        sampled = graph.with_weights(counts.astype(np.float64))
    fault = _poll_fault(SITE_CORRUPT_SKELETON)
    if fault is not None and sampled.m:
        # injected fault: deterministically wreck a slice of the sample,
        # simulating a draw far outside the w.h.p. concentration regime
        frng = np.random.default_rng(fault.seed)
        keep = frng.random(sampled.m) >= 0.5
        if not keep.any():
            keep[0] = True
        sampled = sampled.with_weights(np.where(keep, sampled.w, 0.0))
    if params.certify:
        k = cap  # preserve every cut up to the capped regime exactly
        skeleton = connectivity_certificate(sampled, k, ledger=ledger)
    else:
        skeleton = sampled
    return SkeletonResult(
        skeleton=skeleton, p=p, cap=cap, lambda_underestimate=lambda_underestimate
    )
