"""Sampled / truncated / exclusive hierarchies (Section 3.1, Alg. 3.14).

The hierarchy halves an unweighted-multigraph view of G layer by layer:
``G_0 = G`` (every weight-w edge = w unit copies), and ``G_i`` keeps each
copy of ``G_{i-1}`` with probability 1/2.  To make this work-efficient
the *truncated* hierarchy clamps every edge to enter only at its
*critical layer* ``t_e`` — the deepest layer where its expected
multiplicity still exceeds ``crit_constant * log n`` (Definition 3.8) —
sampling there directly from ``B(w_e, 2^{-t_e})`` and halving onward.
Layers above the critical layer implicitly reuse the critical-layer
count (Definition 3.9), which cannot disturb any min-cut below the
separation windows of Claims 3.11-3.13.

The *exclusive* hierarchy is the layer-wise difference
``hat G_i = G_i^trunc \\ G_{i+1}^trunc`` (Definition 3.16), computed here
as an aligned count subtraction (the halving guarantees nesting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.graphs.multigraph import MultiGraph
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import checkpoint as _checkpoint

__all__ = ["HierarchyParams", "TruncatedHierarchy", "build_truncated_hierarchy"]


@dataclass(frozen=True)
class HierarchyParams:
    """Constants of Section 3 (paper values in comments).

    The paper's constants (500 log n critical multiplicity, 100 log n
    skeleton probability, [75, 125] log n windows...) are calibrated for
    w.h.p. statements as n -> infinity; ``scale`` shrinks them uniformly
    so the separation windows remain *proportionally* identical at
    benchmark scale.  ``scale=1`` reproduces the printed constants.
    """

    scale: float = 1.0
    crit_constant: float = 500.0  # Definition 3.8
    skeleton_constant: float = 100.0  # Definition 3.4
    window_low: float = 75.0  # Claim 3.6 / 3.11
    window_high: float = 125.0
    above_high: float = 67.0  # Claim 3.12
    below_low: float = 160.0  # Claim 3.13
    cert_budget: float = 400.0  # Algorithm 3.17 count_e
    cert_forests: float = 200.0  # Algorithm 3.17 sfcount

    def log_n(self, n: int) -> float:
        return math.log2(max(n, 2))

    def crit_threshold(self, n: int) -> float:
        return max(self.scale * self.crit_constant * self.log_n(n), 1.0)

    def window(self, n: int) -> tuple[float, float]:
        ln = self.log_n(n)
        return (self.scale * self.window_low * ln, self.scale * self.window_high * ln)

    def cert_k(self, n: int) -> int:
        return max(int(math.ceil(self.scale * self.cert_forests * self.log_n(n))), 2)

    def cert_edge_budget(self, n: int) -> int:
        return max(int(math.ceil(self.scale * self.cert_budget * self.log_n(n))), 4)


@dataclass
class TruncatedHierarchy:
    """All layers of the truncated + exclusive hierarchies.

    ``layers[i]`` is ``G_i^trunc`` and ``exclusive[i]`` is ``hat G_i``,
    index-aligned multigraphs over the input's edge slots.  ``t_e`` is
    the per-edge critical layer.
    """

    base: Graph
    params: HierarchyParams
    t_e: np.ndarray
    layers: List[MultiGraph]
    exclusive: List[MultiGraph]

    @property
    def depth(self) -> int:
        return len(self.layers)

    def validate(self) -> None:
        """Structural invariants (used by tests):

        * nesting: layer i+1 <= layer i copy-wise,
        * exclusivity: exclusive[i] == layers[i] - layers[i+1],
        * top layer enters at critical multiplicities.
        """
        for i in range(self.depth - 1):
            if not self.layers[i + 1].is_subgraph_of(self.layers[i]):
                raise GraphFormatError(f"hierarchy not nested at layer {i}")
            diff = self.layers[i].counts - self.layers[i + 1].counts
            if not np.array_equal(diff, self.exclusive[i].counts):
                raise GraphFormatError(f"exclusive layer {i} mismatch")
        if self.depth and not np.array_equal(
            self.layers[-1].counts, self.exclusive[-1].counts
        ):
            raise GraphFormatError("last exclusive layer must equal last layer")


def build_truncated_hierarchy(
    graph: Graph,
    params: HierarchyParams = HierarchyParams(),
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> TruncatedHierarchy:
    """Algorithm 3.14 (Claim 3.15: O(m log n) work, O(log n) depth).

    Requires integer weights (multigraph semantics).
    """
    rng = rng if rng is not None else np.random.default_rng()
    w = graph.require_integer_weights()
    n, m = graph.n, graph.m
    total = int(w.sum())
    k = max(log2ceil(max(total, 2)), 1)
    thresh = params.crit_threshold(n)
    # Definition 3.8: t_e = largest integer with w / 2^t >= threshold
    with np.errstate(divide="ignore"):
        t_e = np.floor(np.log2(np.maximum(w / thresh, 1.0))).astype(np.int64)
    t_e = np.clip(t_e, 0, k)
    # enter each edge at its critical layer with a single binomial draw
    base_counts = rng.binomial(w, 0.5 ** t_e.astype(np.float64)).astype(np.int64)
    layers: List[MultiGraph] = []
    prev = None
    for i in range(k + 1):
        _checkpoint("hierarchy.layer")
        if prev is None:
            # layer 0: every edge shows its critical-layer count (for
            # t_e = 0 the draw was B(w, 1) = w, i.e. the true layer-0
            # multiplicity; for t_e > 0 this is the Def. 3.9 truncation)
            counts = base_counts.copy()
        else:
            halved = rng.binomial(prev, 0.5).astype(np.int64)
            counts = np.where(i <= t_e, base_counts, halved)
        layers.append(MultiGraph(n, graph.u, graph.v, counts))
        prev = counts
    exclusive: List[MultiGraph] = []
    for i in range(k + 1):
        if i < k:
            exclusive.append(layers[i].minus(layers[i + 1]))
        else:
            exclusive.append(layers[i])
    # Claim 3.15 charge: binomial sampling at critical layers O(m log n)
    # + O(log n) halving rounds each linear in live copies
    ledger.charge(
        work=float(m * log2ceil(max(n, 2)) + sum(int(l.total_copies) for l in layers)),
        depth=float(k + log2ceil(max(n, 2))),
    )
    return TruncatedHierarchy(
        base=graph, params=params, t_e=t_e, layers=layers, exclusive=exclusive
    )
