"""Certificate hierarchy (Algorithm 3.17, Claims 3.18-3.19).

Walks the exclusive hierarchy from the sparsest layer k down to 0,
extracting at most ``200 log n`` spanning forests per layer, with a
global per-edge participation budget ``count_e = 400 log n``: an edge
whose budget is exhausted is deleted from the current and all earlier
(denser) layers.  The key accounting invariant (Claim 3.18) is that
every decrement of ``count_e`` corresponds to one unit edge of any cut
through e being secured in the certificates collected so far, so
``union_{j >= i} H_j`` is a ``200 log n``-cut-certificate of
``G_i^trunc``.

Total work is O(m log n): each edge participates in at most
``400 log n`` forest computations (Claim 3.19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.multigraph import MultiGraph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.connectivity import spanning_forest
from repro.sparsify.hierarchy import TruncatedHierarchy

__all__ = ["CertificateHierarchy", "build_certificate_hierarchy"]


@dataclass
class CertificateHierarchy:
    """Per-layer certificates H_i and their downward unions.

    ``certificates[i]`` is H_i (counts aligned with the base edge
    slots); ``cumulative(i)`` returns ``union_{j >= i} H_j`` as a
    weighted graph, the object the approximation algorithm computes
    min-cuts on.
    """

    hierarchy: TruncatedHierarchy
    certificates: List[MultiGraph]
    forests_per_layer: List[int]

    def cumulative(self, i: int) -> Graph:
        counts = np.zeros_like(self.certificates[0].counts)
        for j in range(i, len(self.certificates)):
            counts = counts + self.certificates[j].counts
        base = self.hierarchy.base
        keep = counts > 0
        return Graph(
            base.n, base.u[keep], base.v[keep],
            counts[keep].astype(np.float64), validate=False,
        )

    @property
    def depth(self) -> int:
        return len(self.certificates)


def build_certificate_hierarchy(
    hierarchy: TruncatedHierarchy,
    ledger: Ledger = NULL_LEDGER,
) -> CertificateHierarchy:
    """Algorithm 3.17 over an exclusive hierarchy."""
    params = hierarchy.params
    base = hierarchy.base
    n = base.n
    budget = np.full(
        base.m, params.cert_edge_budget(n), dtype=np.int64
    )  # count_e, Definition in Alg. 3.17 line 2
    max_forests = params.cert_k(n)  # the "200 log n" per layer
    certs: List[MultiGraph] = []
    forests_used: List[int] = []
    for i in range(hierarchy.depth - 1, -1, -1):
        residual = hierarchy.exclusive[i].counts.copy()
        cert_counts = np.zeros_like(residual)
        sfcount = 0
        while sfcount < max_forests:
            residual[budget <= 0] = 0  # line 6: drop exhausted edges
            live = np.flatnonzero(residual > 0)
            if live.size == 0:
                break
            forest_local, _ = spanning_forest(
                n, base.u[live], base.v[live], ledger=ledger
            )
            picked = live[forest_local]
            cert_counts[picked] += 1
            residual[picked] -= 1
            budget[live] -= 1  # every *participating* edge pays (line 8)
            sfcount += 1
        certs.append(MultiGraph(n, base.u, base.v, cert_counts))
        forests_used.append(sfcount)
    certs.reverse()
    forests_used.reverse()
    return CertificateHierarchy(
        hierarchy=hierarchy, certificates=certs, forests_per_layer=forests_used
    )
