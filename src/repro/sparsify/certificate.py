"""Sparse k-connectivity certificates (Definition 2.5, Theorem 2.6).

Nagamochi–Ibaraki: compute spanning forests F_1, F_2, ... of the
residual graph k times; their union has <= k(n-1) edges (weighted: total
weight) and contains every edge crossing any cut of value <= k.  Each
forest is one Halperin–Zwick-substitute spanning-forest call
(:mod:`repro.primitives.connectivity`), so the whole certificate costs
O(k (m + n)) work and O(k log n) depth — Theorem 2.6.

Weighted graphs are handled in multigraph semantics: an edge of weight w
stands for w parallel unit copies, of which each forest can pick one, so
the certificate weight of an edge is ``min(w, #forests that picked
it)``.  Fractional weights are supported by allowing the residual
multiplicity to go fractional (the last pick takes whatever remains,
< 1); this preserves the certificate guarantee for cuts of value <= k.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.connectivity import spanning_forest

__all__ = ["connectivity_certificate", "certificate_forests", "certificate_weights"]


def certificate_weights(
    graph: Graph, k: int, ledger: Ledger = NULL_LEDGER
) -> Tuple[np.ndarray, int]:
    """Per-edge certificate weights after up to ``k`` NI rounds.

    Returns ``(cert_w, rounds_used)`` with ``cert_w`` aligned to
    ``graph.u/v/w`` — ``cert_w[i] <= graph.w[i]`` is the portion of
    edge i inside the certificate.  Consumers that need the weight an
    edge carries *beyond* the certificate (e.g. Matula's contraction
    rule) subtract without any index matching.

    Stops early once the residual graph is empty (all weight consumed),
    which is what bounds the work on already-sparse inputs.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    residual = graph.w.astype(np.float64).copy()
    cert_w = np.zeros(graph.m, dtype=np.float64)
    rounds = 0
    for _ in range(k):
        live = np.flatnonzero(residual > 0)
        if live.size == 0:
            break
        rounds += 1
        forest_local, _ = spanning_forest(
            graph.n, graph.u[live], graph.v[live], ledger=ledger
        )
        picked = live[forest_local]
        take = np.minimum(residual[picked], 1.0)
        cert_w[picked] += take
        residual[picked] -= take
    return cert_w, rounds


def certificate_forests(
    graph: Graph, k: int, ledger: Ledger = NULL_LEDGER
) -> Tuple[Graph, int]:
    """Run up to ``k`` NI rounds; return (certificate, rounds_used)."""
    cert_w, rounds = certificate_weights(graph, k, ledger=ledger)
    keep = cert_w > 0
    cert = Graph(
        graph.n, graph.u[keep], graph.v[keep], cert_w[keep], validate=False
    )
    return cert, rounds


def connectivity_certificate(
    graph: Graph, k: int, ledger: Ledger = NULL_LEDGER
) -> Graph:
    """Sparse k-connectivity certificate of ``graph`` (Theorem 2.6).

    The result preserves every cut of value <= k exactly and has total
    weight <= k * (n - 1).
    """
    cert, _ = certificate_forests(graph, k, ledger=ledger)
    return cert
