"""Single-path 2-respecting minima (Section 4.1.2).

For every path p of the decomposition (a descending chain of tree
edges), the matrix ``M_p[i][j] = cut(e_i, e_j)`` on i < j is partial
inverse-Monge; :func:`repro.monge.partial.triangle_minimum` finds its
minimum with O(ell log ell) oracle queries.  Paths are processed in
logically-parallel branches (Lemma 4.6: the per-path work telescopes
because paths are edge-disjoint; depth is the max over paths).
"""

from __future__ import annotations

from typing import Tuple

from repro.kernels.monge import triangle_minimum_batched
from repro.monge.partial import triangle_minimum
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.rangesearch.cutqueries import CutOracle
from repro.trees.paths import PathDecomposition

__all__ = ["single_path_minimum"]


def single_path_minimum(
    oracle: CutOracle,
    decomposition: PathDecomposition,
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[float, int, int]:
    """Minimum cut(e, f) over pairs of distinct edges on a common path.

    Returns ``(value, u, v)`` (child endpoints), or ``(inf, -1, -1)``
    when no path has two edges.
    """
    best: Tuple[float, int, int] = (float("inf"), -1, -1)
    with ledger.parallel() as par:
        for arr in decomposition.paths:
            if arr.shape[0] < 2:
                continue
            with par.branch():
                labels = [int(x) for x in arr]
                # model depth of the divide-and-conquer over this path:
                # O(log ell) levels, each a parallel SMAWK round of depth
                # O(log ell) whose entry inspections cost one cut query
                ell_log = log2ceil(len(labels)) + 1
                with ledger.batch(depth=ell_log * (ell_log + oracle.query_depth)):
                    if getattr(oracle, "batched", False):
                        val, a, b = triangle_minimum_batched(
                            oracle, labels, ledger=ledger, inverse=True
                        )
                    else:
                        val, a, b = triangle_minimum(
                            labels,
                            lambda x, y: oracle.cut(x, y, ledger=ledger),
                            ledger=ledger,
                            inverse=True,
                        )
                if val < best[0]:
                    best = (val, a, b)
    return best
