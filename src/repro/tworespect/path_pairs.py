"""The distinct-path case of the 2-respecting search (Section 4.1.3).

Pipeline (Claims 4.13, 4.15, Lemmas 4.16, 4.17):

1. For every tree edge e, locate the terminals c_e (cross-interest) and
   d_e (down-interest) of its interest paths with the centroid-guided
   search (O(log n) oracle probes per edge — Claim 4.13).
2. Emit *interest tuples* (p, q, e): q ranges over ``Root-paths(c_e)``
   and ``Root-paths(d_e)`` (Claim 4.15).  Note that Root-paths(d_e)
   automatically includes every path on the root -> e route, which is
   exactly what makes nested (ancestor/descendant) pairs mutual: the
   descendant edge always names its ancestors' paths, while the
   ancestor names the descendant's path iff it is down-interested —
   which the minimizing nested pair satisfies.
3. Group tuples by unordered path pair (Lemma 4.16); keep pairs where
   both directions contributed (mutual interest).
4. For each pair, split the edge lists by their relation to the other
   path's head into nested and cross blocks — each block is
   (inverse-)Monge — and take each block's SMAWK minimum (Lemma 4.17).

Every inspected entry is a genuine cut of G, so overapproximating the
interest lists (which steps 1-2 deliberately do) affects only work,
never correctness.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.kernels.monge import matrix_minimum_batched
from repro.kernels.terminals import find_interest_terminals_batched
from repro.monge.smawk import matrix_minimum
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.rangesearch.cutqueries import CutOracle
from repro.trees.centroid import CentroidDecomposition, deepest_on_interest_path
from repro.trees.paths import PathDecomposition
from repro.trees.rootpaths import RootPaths

__all__ = [
    "find_interest_terminals",
    "collect_interest_tuples",
    "group_interested_pairs",
    "path_pair_minimum",
]


def find_interest_terminals(
    oracle: CutOracle,
    cd: CentroidDecomposition,
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per tree edge e (indexed by child endpoint), the nodes c_e and d_e
    delimiting e's cross- and down-interest paths (Claim 4.13)."""
    if getattr(oracle, "batched", False):
        return find_interest_terminals_batched(oracle, cd, ledger=ledger)
    tree = oracle.tree
    n = tree.n
    c_e = np.full(n, -1, dtype=np.int64)
    d_e = np.full(n, -1, dtype=np.int64)
    root = tree.root
    with ledger.parallel() as par:
        for u in range(n):
            if tree.parent[u] < 0:
                continue
            with par.branch():
                c_e[u] = deepest_on_interest_path(
                    tree,
                    cd,
                    top=root,
                    member=lambda x, _u=u: x == root
                    or oracle.cross_interested(_u, x, ledger=ledger),
                    ledger=ledger,
                )
                d_e[u] = deepest_on_interest_path(
                    tree,
                    cd,
                    top=u,
                    member=lambda x, _u=u: x == _u
                    or oracle.down_interested(_u, x, ledger=ledger),
                    ledger=ledger,
                )
    return c_e, d_e


def collect_interest_tuples(
    rootpaths: RootPaths,
    c_e: np.ndarray,
    d_e: np.ndarray,
    ledger: Ledger = NULL_LEDGER,
) -> List[Tuple[int, int, int]]:
    """Interest tuples (p, q, e) per Definition 4.14 / Claim 4.15."""
    dec = rootpaths.decomposition
    tree = rootpaths.tree
    tuples: List[Tuple[int, int, int]] = []
    with ledger.parallel() as par:
        for u in range(tree.n):
            if tree.parent[u] < 0:
                continue
            with par.branch():
                p = int(dec.path_of[u])
                seen: set[int] = set()
                for terminal in (int(c_e[u]), int(d_e[u])):
                    if terminal < 0:
                        continue
                    for q in rootpaths.query(terminal, ledger=ledger):
                        if q != p and q not in seen:
                            seen.add(q)
                            tuples.append((p, q, u))
    return tuples


def group_interested_pairs(
    tuples: List[Tuple[int, int, int]],
    ledger: Ledger = NULL_LEDGER,
) -> Dict[Tuple[int, int], Tuple[List[int], List[int]]]:
    """Lemma 4.16: group tuples into mutual pairs.

    Returns ``{(p, q): (r, s)}`` with p < q, ``r`` the edges of p
    interested in q and ``s`` vice versa — only for pairs where both
    lists are nonempty.  Charged at the lemma's sort cost O(n log n)
    work / O(log n) depth.
    """
    by_pair: Dict[Tuple[int, int], Tuple[List[int], List[int]]] = defaultdict(
        lambda: ([], [])
    )
    for p, q, e in tuples:
        key = (p, q) if p < q else (q, p)
        slot = 0 if p < q else 1
        by_pair[key][slot].append(e)
    t = len(tuples)
    ledger.charge(
        work=float(max(t, 1)) * max(np.log2(max(t, 2)), 1.0),
        depth=float(max(np.log2(max(t, 2)), 1.0)),
    )
    return {
        key: (r, s) for key, (r, s) in by_pair.items() if r and s
    }


def path_pair_minimum(
    oracle: CutOracle,
    decomposition: PathDecomposition,
    pairs: Dict[Tuple[int, int], Tuple[List[int], List[int]]],
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[float, int, int]:
    """Lemma 4.17: minimum cut(e, f) over all mutual path pairs.

    Each pair's (r, s) lists are ordered shallow -> deep and split into
    nested / cross blocks; SMAWK runs per block.
    """
    tree = oracle.tree
    dec = decomposition
    best: Tuple[float, int, int] = (float("inf"), -1, -1)

    def lookup(a: int, b: int) -> float:
        return oracle.cut(a, b, ledger=ledger)

    with ledger.parallel() as par:
        for (p, q), (r, s) in pairs.items():
            with par.branch():
                r_sorted = sorted(set(r), key=lambda e: dec.index_in_path[e])
                s_sorted = sorted(set(s), key=lambda e: dec.index_in_path[e])
                hp = dec.head(p)
                hq = dec.head(q)
                r_anc = [e for e in r_sorted if tree.is_ancestor(e, hq) and e != hq]
                r_non = [e for e in r_sorted if not (tree.is_ancestor(e, hq) and e != hq)]
                s_anc = [f for f in s_sorted if tree.is_ancestor(f, hp) and f != hp]
                s_non = [f for f in s_sorted if not (tree.is_ancestor(f, hp) and f != hp)]
                blocks = []
                if r_anc and s_sorted:
                    # rows above, cols nested below: inverse-Monge
                    blocks.append((r_anc, s_sorted[::-1]))
                if s_anc and r_non:
                    blocks.append((r_non, s_anc[::-1]))
                if r_non and s_non:
                    # disjoint subtrees: Monge as-is
                    blocks.append((r_non, s_non))
                for rows, cols in blocks:
                    # one SMAWK call: O(log ell) parallel rounds of cut
                    # queries (RV94 model depth; see DESIGN.md)
                    ell_log = log2ceil(len(rows) + len(cols)) + 1
                    with ledger.batch(depth=ell_log * oracle.query_depth):
                        if getattr(oracle, "batched", False):
                            val, a, b = matrix_minimum_batched(
                                oracle, rows, cols, ledger=ledger
                            )
                        else:
                            val, a, b = matrix_minimum(rows, cols, lookup, ledger=ledger)
                    if val < best[0]:
                        best = (val, a, b)
    return best
