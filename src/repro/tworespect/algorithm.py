"""Theorem 4.2: the parallel minimum 2-respecting cut of one tree.

Given graph G and a spanning tree T (parent-array over G's vertices),
find the minimum-weight cut of G that cuts at most two edges of T:

1. binarize T (Section 4.1.3 WLOG) and number it in postorder;
2. build the cut-query oracle (Lemma A.1) with the requested range-tree
   branching (2 for the O(m log m + n log^3 n)-work general bound,
   ~n^eps for the Section 4.3 dense-graph bound);
3. the 1-respecting minimum: cost(e) over all tree edges;
4. the single-path case over a Property-4.3 decomposition (Lemma 4.6);
5. the distinct-path case via interest terminals, tuples, and per-pair
   SMAWK (Lemma 4.17).

All stages charge the shared ledger; the oracle's structural visit
counters land in ``CutResult.stats``.
"""

from __future__ import annotations

from typing import Literal, Tuple

import numpy as np

from repro import obs
from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import checkpoint as _checkpoint
from repro.primitives.euler import postorder
from repro.rangesearch.cutqueries import CutOracle
from repro.results import CutResult
from repro.trees.binary import binarize_parent
from repro.trees.centroid import centroid_decomposition
from repro.trees.paths import bough_decomposition, heavy_path_decomposition
from repro.trees.rootpaths import RootPaths
from repro.tworespect.path_pairs import (
    collect_interest_tuples,
    find_interest_terminals,
    group_interested_pairs,
    path_pair_minimum,
)
from repro.tworespect.single_path import single_path_minimum

__all__ = ["two_respecting_min_cut"]


def two_respecting_min_cut(
    graph: Graph,
    tree_parent: np.ndarray,
    *,
    branching: int = 2,
    decomposition: Literal["heavy", "bough"] = "heavy",
    ledger: Ledger = NULL_LEDGER,
) -> CutResult:
    """Minimum cut of ``graph`` 2-respecting the tree ``tree_parent``.

    Parameters
    ----------
    graph:
        Weighted undirected graph (need not be connected beyond the
        tree's span, but the tree must span all its vertices).
    tree_parent:
        Parent array of a spanning tree of ``graph`` (root = -1 entry).
    branching:
        Range-tree degree; see Section 4.3 (``max(2, round(n**eps))``).
    decomposition:
        Path decomposition flavour; both satisfy Property 4.3.

    Returns
    -------
    CutResult with the optimal value, side mask, witness tree edges, and
    oracle statistics.
    """
    tree_parent = np.asarray(tree_parent, dtype=np.int64)
    if tree_parent.shape[0] != graph.n:
        raise GraphFormatError("tree must span the graph's vertex set")
    if graph.n < 2:
        raise GraphFormatError("need at least two vertices")

    _checkpoint("two_respecting.start")
    with obs.phase("binarize+postorder", ledger):
        bt = binarize_parent(tree_parent, ledger=ledger)
        rt = postorder(bt.parent, ledger=ledger)
    with obs.phase("oracle-build", ledger):
        oracle = CutOracle(graph, rt, branching=branching, ledger=ledger)
        oracle.prefill_costs(ledger=ledger)

    # --- 1-respecting cuts: every tree edge alone -------------------------
    _checkpoint("two_respecting.one_respecting")
    best: Tuple[float, int, int] = (float("inf"), -1, -1)
    with obs.phase("one-respecting", ledger):
        if getattr(oracle, "batched", False):
            # fast kernels: the cache is prefilled, so every branch of the
            # reference loop is a (1, 1) hit charge and the scan reduces
            # to an argmin (np.argmin's first-minimum tie-break matches
            # the ascending `val < best` scan).  One branch charging
            # (#edges, 1) reproduces the reference frame exactly.
            val, u = oracle.cost_argmin()
            best = (val, u, u)
            with ledger.parallel() as par:
                with par.branch():
                    ledger.charge(work=float(rt.n - 1), depth=1.0)
        else:
            with ledger.parallel() as par:
                for u in range(rt.n):
                    if rt.parent[u] < 0:
                        continue
                    with par.branch():
                        val = oracle.cost(u, ledger=ledger)
                        if val < best[0]:
                            best = (val, u, u)

    # --- same-path pairs ---------------------------------------------------
    _checkpoint("two_respecting.single_path")
    with obs.phase("decompose", ledger):
        dec_fn = heavy_path_decomposition if decomposition == "heavy" else bough_decomposition
        dec = dec_fn(rt, ledger=ledger)
        rootpaths = RootPaths.build(rt, dec, ledger=ledger)
    with obs.phase("single-path", ledger):
        val, a, b = single_path_minimum(oracle, dec, ledger=ledger)
        if val < best[0]:
            best = (val, a, b)

    # --- distinct-path pairs -------------------------------------------------
    _checkpoint("two_respecting.path_pairs")
    with obs.phase("centroid", ledger):
        cd = centroid_decomposition(rt, ledger=ledger)
    with obs.phase("interest-terminals", ledger):
        c_e, d_e = find_interest_terminals(oracle, cd, ledger=ledger)
    with obs.phase("interest-tuples", ledger):
        tuples = collect_interest_tuples(rootpaths, c_e, d_e, ledger=ledger)
        pairs = group_interested_pairs(tuples, ledger=ledger)
    with obs.phase("path-pairs", ledger):
        val, a, b = path_pair_minimum(oracle, dec, pairs, ledger=ledger)
        if val < best[0]:
            best = (val, a, b)

    value, eu, ev = best
    side = oracle.cut_side_mask(eu, ev)
    # normalise: a cut side must be a proper subset of the *real* vertices
    if side.all() or not side.any():  # pragma: no cover - defensive
        raise GraphFormatError("degenerate 2-respecting side mask")
    reg = obs.counters()
    if reg.enabled:
        reg.add("tworespect.trees")
        reg.add("oracle.nodes_visited", float(oracle.total_nodes_visited))
        reg.add("oracle.queries", float(oracle.points.stats.queries))
        reg.add("tworespect.interest_tuples", float(len(tuples)))
        reg.add("tworespect.interested_pairs", float(len(pairs)))
    return CutResult(
        value=float(value),
        side=side,
        witness_edges=(int(eu), int(ev)),
        stats={
            "oracle_nodes_visited": float(oracle.total_nodes_visited),
            "oracle_queries": float(oracle.points.stats.queries),
            "num_paths": float(dec.num_paths),
            "num_interest_tuples": float(len(tuples)),
            "num_interested_pairs": float(len(pairs)),
            "tree_size_binarized": float(rt.n),
        },
    )
