"""Reference 2-respecting minimum cut by exhaustive pair enumeration.

O(n^2) cut-oracle queries (or O(n^2 m) with the naive oracle) — the
ground truth the parallel algorithm is tested against.
"""

from __future__ import annotations

from typing import Tuple

from repro.graphs.graph import Graph
from repro.primitives.euler import RootedTree
from repro.rangesearch.cutqueries import NaiveCutOracle

__all__ = ["brute_force_two_respecting"]


def brute_force_two_respecting(
    graph: Graph, tree: RootedTree
) -> Tuple[float, int, int]:
    """Minimum over all 1- and 2-edge choices of tree edges.

    Returns ``(value, u, v)`` with u, v the child endpoints of the
    minimizing tree edges (u == v for a 1-respecting optimum).
    """
    oracle = NaiveCutOracle(graph, tree)
    edges = [int(x) for x in tree.tree_edges()]
    best = (float("inf"), -1, -1)
    # vectorised per-row evaluation: for edge u, compute cut(u, v) for all v
    t = tree
    posts_u = t.post[graph.u]
    posts_v = t.post[graph.v]
    w = graph.w
    for i, a in enumerate(edges):
        in_a_u = (t.start(a) <= posts_u) & (posts_u <= t.post[a])
        in_a_v = (t.start(a) <= posts_v) & (posts_v <= t.post[a])
        for b in edges[i:]:
            in_b_u = (t.start(b) <= posts_u) & (posts_u <= t.post[b])
            in_b_v = (t.start(b) <= posts_v) & (posts_v <= t.post[b])
            side_u = in_a_u ^ in_b_u if a != b else in_a_u
            side_v = in_a_v ^ in_b_v if a != b else in_a_v
            val = float(w[side_u != side_v].sum())
            if val < best[0]:
                best = (val, a, b)
    return best
