"""Parallel minimum 2-respecting cut (Section 4.1, Theorem 4.2)."""

from repro.tworespect.algorithm import two_respecting_min_cut
from repro.tworespect.bruteforce import brute_force_two_respecting
from repro.tworespect.path_pairs import (
    collect_interest_tuples,
    find_interest_terminals,
    group_interested_pairs,
    path_pair_minimum,
)
from repro.tworespect.single_path import single_path_minimum

__all__ = [
    "two_respecting_min_cut",
    "brute_force_two_respecting",
    "single_path_minimum",
    "find_interest_terminals",
    "collect_interest_tuples",
    "group_interested_pairs",
    "path_pair_minimum",
]
