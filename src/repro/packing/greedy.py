"""Greedy tree packing (Definition 2.1) via load-ordered MSTs.

The packing phase of Karger's framework (Section 4.2) runs a
Plotkin–Shmoys–Tardos-style multiplicative update: iteration after
iteration, compute a minimum spanning tree with respect to the current
*relative loads* ``load_e / w_e`` and increment the loads of its edges.
After O(lambda' log n) iterations on a skeleton with min-cut
lambda' = O(log n) — i.e. O(log^2 n) MSTs — the multiset of trees is a
near-maximal packing, and w.h.p. the minimum cut 2-respects a constant
fraction of them [Kar00, TK00].

Each MST is one Borůvka run (Pettie–Ramachandran substitute, see
DESIGN.md), so the phase costs O(q * (m' + n log n)) work on the
skeleton's m' = O(n log n) edges and O(log n) depth per tree — the
O(log^3 n)-depth budget of Theorem 4.18 over q = O(log^2 n) sequential
iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import NotConnectedError
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import root_tree
from repro.primitives.mst import minimum_spanning_forest

__all__ = ["GreedyPacking", "greedy_tree_packing"]


@dataclass(frozen=True)
class GreedyPacking:
    """Result of the packing phase.

    ``trees`` holds one entry per *distinct* tree (edge-id tuples into
    the packed graph); ``multiplicity[i]`` counts how many of the q
    iterations produced tree i (its weight in the packing).
    """

    graph: Graph
    trees: List[np.ndarray]
    multiplicity: List[int]
    iterations: int

    @property
    def num_distinct(self) -> int:
        return len(self.trees)

    def tree_parent(self, i: int, root: int = 0) -> np.ndarray:
        """Parent array (over the packed graph's vertices) of tree i."""
        ids = self.trees[i]
        return root_tree(self.graph.n, self.graph.u[ids], self.graph.v[ids], root)

    def top_trees(self, k: int) -> List[int]:
        """Indices of the k highest-multiplicity distinct trees."""
        order = sorted(
            range(self.num_distinct), key=lambda i: -self.multiplicity[i]
        )
        return order[:k]

    def sample_trees(self, k: int, rng: np.random.Generator) -> List[int]:
        """Sample k distinct trees with probability proportional to
        packing multiplicity (without replacement), always including the
        most-packed tree.

        This is the selection the w.h.p. argument wants: a constant
        fraction of the packing *by weight* 2-constrains the min cut
        [Kar00], so weight-proportional sampling misses with probability
        exponentially small in k.
        """
        if k >= self.num_distinct:
            return list(range(self.num_distinct))
        weights = np.asarray(self.multiplicity, dtype=np.float64)
        top = int(np.argmax(weights))
        chosen = {top}
        weights = weights.copy()
        weights[top] = 0.0
        while len(chosen) < k and weights.sum() > 0:
            p = weights / weights.sum()
            pick = int(rng.choice(self.num_distinct, p=p))
            chosen.add(pick)
            weights[pick] = 0.0
        return sorted(chosen, key=lambda i: -self.multiplicity[i])


def greedy_tree_packing(
    graph: Graph,
    iterations: Optional[int] = None,
    ledger: Ledger = NULL_LEDGER,
) -> GreedyPacking:
    """Pack spanning trees greedily by relative load.

    Parameters
    ----------
    graph:
        Connected weighted graph (typically a skeleton).
    iterations:
        Number of MST iterations q; defaults to
        ``ceil(3 * log2(n)^2)`` — the O(log^2 n) schedule the paper
        inherits from [Kar00] for skeletons with min-cut O(log n).

    Raises
    ------
    NotConnectedError:
        If some MST iteration fails to span the graph.
    """
    n, m = graph.n, graph.m
    if iterations is None:
        lg = math.log2(max(n, 2))
        iterations = max(int(math.ceil(3 * lg * lg)), 3)
    loads = np.zeros(m, dtype=np.float64)
    inv_w = 1.0 / graph.w
    distinct: dict[Tuple[int, ...], int] = {}
    trees: List[np.ndarray] = []
    mult: List[int] = []
    for _ in range(iterations):
        keys = loads * inv_w
        ids, labels = minimum_spanning_forest(n, graph.u, graph.v, keys, ledger=ledger)
        if ids.shape[0] != n - 1:
            raise NotConnectedError("packing graph is not connected")
        loads[ids] += 1.0
        sig = tuple(ids.tolist())
        slot = distinct.get(sig)
        if slot is None:
            distinct[sig] = len(trees)
            trees.append(ids)
            mult.append(1)
        else:
            mult[slot] += 1
    return GreedyPacking(
        graph=graph, trees=trees, multiplicity=mult, iterations=iterations
    )
