"""Theorem 4.18: the full tree-packing step — skeleton, then greedy
packing — producing O(log n) candidate trees of which w.h.p. at least
one 2-constrains the minimum cut.

The skeleton phase (Lemma 4.23) needs a constant-factor *underestimate*
of the min cut, supplied by the Section 3 approximation; the packing
phase is :func:`repro.packing.greedy.greedy_tree_packing` on the
skeleton.  Candidate trees are translated back to the original graph as
parent arrays (topology-only objects — the 2-respecting search weighs
cuts against the original graph, not the skeleton).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import NotConnectedError
from repro.graphs.graph import Graph
from repro.packing.greedy import GreedyPacking, greedy_tree_packing
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import checkpoint as _checkpoint
from repro.resilience.faults import SITE_DROP_TREE, poll as _poll_fault
from repro.sparsify.skeleton import SkeletonParams, SkeletonResult, build_skeleton

__all__ = [
    "PackingResult",
    "pack_trees",
    "build_cut_skeleton",
    "pack_skeleton",
    "select_trees",
]


@dataclass(frozen=True)
class PackingResult:
    """Candidate spanning trees for the cut-finding step.

    ``tree_parents`` are parent arrays over the *original* graph's
    vertices, most-packed first.
    """

    skeleton: SkeletonResult
    packing: GreedyPacking
    tree_parents: List[np.ndarray]

    @property
    def num_trees(self) -> int:
        return len(self.tree_parents)


def build_cut_skeleton(
    graph: Graph,
    lambda_underestimate: float,
    *,
    skeleton_params: SkeletonParams = SkeletonParams(),
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> SkeletonResult:
    """The skeleton half of Theorem 4.18 (Lemma 4.23): sample until the
    skeleton is connected and spanning.

    If the sampled skeleton comes out disconnected (possible when the
    underestimate is too aggressive for the w.h.p. regime), the sampling
    probability is doubled and the skeleton rebuilt; at p = 1 the
    skeleton equals the weight-capped input, which is connected whenever
    the input is.
    """
    rng = rng if rng is not None else np.random.default_rng()
    if graph.n < 2 or not graph.is_connected():
        raise NotConnectedError("packing requires a connected graph on >= 2 vertices")

    lam = max(float(lambda_underestimate), 1e-12)
    with ledger.phase("skeleton"):
        rebuilds_at_full_p = 0
        while True:
            _checkpoint("pack_trees.skeleton")
            skel = build_skeleton(graph, lam, params=skeleton_params, rng=rng, ledger=ledger)
            if skel.skeleton.n == graph.n and skel.skeleton.is_connected():
                return skel
            if skel.p >= 1.0:
                # the input is connected (checked above), so a p = 1
                # skeleton can only be disconnected through a corrupted
                # sample (e.g. an injected fault) — rebuild, bounded
                rebuilds_at_full_p += 1
                if rebuilds_at_full_p > 2:  # pragma: no cover - defensive
                    raise NotConnectedError("skeleton disconnected at p = 1")
                continue
            lam /= 2.0  # double the sampling probability and retry


def pack_skeleton(
    skel: SkeletonResult,
    *,
    packing_iterations: Optional[int] = None,
    ledger: Ledger = NULL_LEDGER,
) -> GreedyPacking:
    """The packing half of Theorem 4.18: greedy tree packing on the
    skeleton (deterministic — all randomness lives in the skeleton)."""
    with ledger.phase("greedy-packing"):
        _checkpoint("pack_trees.packing")
        return greedy_tree_packing(
            skel.skeleton, iterations=packing_iterations, ledger=ledger
        )


def select_trees(
    packing: GreedyPacking,
    max_trees: Optional[int],
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Materialize the candidate parent arrays for the cut-finding step.

    ``max_trees=None`` returns every distinct packed tree, highest
    multiplicity first (thorough mode); an int samples that many
    proportional to multiplicity using ``rng``.  The ``packing.drop_tree``
    fault site fires here — this is the one place candidates leave the
    packing.
    """
    if max_trees is None:
        chosen = list(range(packing.num_distinct))
        chosen.sort(key=lambda i: -packing.multiplicity[i])
    else:
        if rng is None:
            rng = np.random.default_rng()
        chosen = packing.sample_trees(max_trees, rng)
    parents = [packing.tree_parent(i) for i in chosen]
    fault = _poll_fault(SITE_DROP_TREE)
    if fault is not None and len(parents) > 1:
        # injected fault: silently lose one candidate tree (never the last
        # one — the driver's contract guarantees at least one candidate)
        del parents[fault.index % len(parents)]
    return parents


def pack_trees(
    graph: Graph,
    lambda_underestimate: float,
    *,
    skeleton_params: SkeletonParams = SkeletonParams(),
    packing_iterations: Optional[int] = None,
    max_trees: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> PackingResult:
    """Theorem 4.18's packing of O(log n) candidate trees.

    Composition of :func:`build_cut_skeleton` → :func:`pack_skeleton` →
    :func:`select_trees`; :class:`repro.engine.CutEngine` runs the same
    three functions as separately cached stages.

    Parameters
    ----------
    lambda_underestimate:
        Constant-factor underestimate of the min cut (Section 4.2 sets
        this to half the Theorem 3.1 approximation).
    max_trees:
        Cap on returned candidates, highest packing multiplicity first;
        None returns every distinct packed tree (the ``thorough`` mode of
        the driver — see DESIGN.md section 5).
    rng:
        Randomness for skeleton sampling and tree selection (the greedy
        packing itself is deterministic).
    """
    rng = rng if rng is not None else np.random.default_rng()
    skel = build_cut_skeleton(
        graph,
        lambda_underestimate,
        skeleton_params=skeleton_params,
        rng=rng,
        ledger=ledger,
    )
    packing = pack_skeleton(
        skel, packing_iterations=packing_iterations, ledger=ledger
    )
    parents = select_trees(packing, max_trees, rng)
    return PackingResult(skeleton=skel, packing=packing, tree_parents=parents)
