"""Tree packing (Section 4.2, Theorem 4.18)."""

from repro.packing.greedy import GreedyPacking, greedy_tree_packing
from repro.packing.karger import (
    PackingResult,
    build_cut_skeleton,
    pack_skeleton,
    pack_trees,
    select_trees,
)

__all__ = [
    "GreedyPacking",
    "greedy_tree_packing",
    "PackingResult",
    "pack_trees",
    "build_cut_skeleton",
    "pack_skeleton",
    "select_trees",
]
