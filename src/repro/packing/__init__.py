"""Tree packing (Section 4.2, Theorem 4.18)."""

from repro.packing.greedy import GreedyPacking, greedy_tree_packing
from repro.packing.karger import PackingResult, pack_trees

__all__ = ["GreedyPacking", "greedy_tree_packing", "PackingResult", "pack_trees"]
