"""Multi-tenant state of the cut-serving daemon.

A *tenant* is a named registration owning

* one :class:`~repro.engine.cache.ArtifactCache` sized by its quota —
  engines of the same tenant amortize preprocessing against each other,
  but never against another tenant's cache (isolation is structural,
  not scheduled: a noisy tenant can evict only its own artifacts);
* a dictionary of named graphs, each fronted by one
  :class:`~repro.engine.CutEngine` (re-registering a name rebinds it);
* a *budget class* bounding its deadlines, concurrency, and write
  access:

  ===========  ================  =============  ============  =========
  class        default deadline  max deadline   max inflight  mutations
  ===========  ================  =============  ============  =========
  interactive  2 s               10 s           8             no
  standard     10 s              60 s           16            yes
  batch        60 s              600 s          4             yes
  ===========  ================  =============  ============  =========

  Classes without write access (``allow_mutation=False``) get a typed
  ``mutation_forbidden`` error for the ``update`` op — interactive
  traffic reads a graph other writers evolve, it never races them.

  A request's ``deadline_ms`` is clamped to the class maximum; a
  request without one gets the class default, so *every* admitted
  query carries a deadline and can be shed.

The tenant name is an identifier, not an authentication: the daemon
trusts its network (see the trust-boundary note in ``docs/service.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import asyncio

from repro.engine.cache import ArtifactCache
from repro.engine.service import CutEngine
from repro.errors import InvalidParameterError
from repro.graphs.graph import Graph

__all__ = [
    "BudgetClass",
    "BUDGET_CLASSES",
    "TenantQuota",
    "Tenant",
    "TenantRegistry",
    "UnknownTenant",
    "UnknownGraph",
]


class UnknownTenant(InvalidParameterError):
    """The request names a tenant that was never registered."""


class UnknownGraph(InvalidParameterError):
    """The request names a graph its tenant never registered."""


@dataclass(frozen=True)
class BudgetClass:
    """Deadline and concurrency bounds shared by every tenant of a class.

    ``executor_backend`` optionally pins the executor backend the
    class's queries run on (see :func:`repro.pram.executor.force_executor`);
    None leaves the process-wide selection alone.  The service falls
    back — and counts ``serve.backend_fallbacks`` — when the pinned
    backend is unavailable on the host (e.g. ``shm`` without
    ``/dev/shm``).
    """

    name: str
    default_deadline_s: float
    max_deadline_s: float
    max_inflight: int
    executor_backend: Optional[str] = None
    #: may tenants of this class run the mutation surface (the
    #: ``update`` op)?  Interactive traffic is read-only: its short
    #: deadlines make the rebase path (a full cold preprocess an update
    #: may trigger) a shedding hazard, and concurrent short-deadline
    #: writers would churn every reader's epoch.
    allow_mutation: bool = True


#: the built-in classes; ``ServerConfig.default_budget_class`` picks the
#: fallback for tenants registered without one.  Batch tenants run big
#: fan-outs under generous deadlines, so they default to the zero-copy
#: shm backend; interactive/standard keep the ambient backend (thread
#: by default) where dispatch latency beats throughput.
BUDGET_CLASSES: Dict[str, BudgetClass] = {
    "interactive": BudgetClass("interactive", 2.0, 10.0, 8, allow_mutation=False),
    "standard": BudgetClass("standard", 10.0, 60.0, 16),
    "batch": BudgetClass("batch", 60.0, 600.0, 4, executor_backend="shm"),
}


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource bounds, fixed at registration."""

    budget_class: str = "standard"
    cache_entries: int = 64
    cache_bytes: int = 64 * 2**20
    max_graphs: int = 32

    def __post_init__(self) -> None:
        if self.budget_class not in BUDGET_CLASSES:
            raise InvalidParameterError(
                f"unknown budget class {self.budget_class!r}; "
                f"known: {sorted(BUDGET_CLASSES)}"
            )
        if self.max_graphs < 1:
            raise InvalidParameterError("max_graphs must be >= 1")


@dataclass
class Tenant:
    """One tenant's registered graphs, cache, and admission state."""

    name: str
    quota: TenantQuota
    cache: ArtifactCache = field(init=False)
    engines: Dict[str, CutEngine] = field(default_factory=dict)
    locks: Dict[str, asyncio.Lock] = field(default_factory=dict)
    #: registration-time (seed, epsilon) per graph name — the durability
    #: layer persists these so a recovered engine is constructed with
    #: the exact parameters the live one was
    graph_params: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: queries admitted and not yet answered (drives the per-tenant
    #: inflight limit of the budget class)
    inflight: int = 0

    def __post_init__(self) -> None:
        self.cache = ArtifactCache(
            max_entries=self.quota.cache_entries, max_bytes=self.quota.cache_bytes
        )

    @property
    def budget_class(self) -> BudgetClass:
        return BUDGET_CLASSES[self.quota.budget_class]

    def register_graph(
        self,
        graph_name: str,
        graph: Graph,
        *,
        seed: int = 0,
        epsilon: Optional[float] = None,
    ) -> CutEngine:
        """Bind ``graph`` (replacing any previous binding of the name)
        to a fresh engine sharing this tenant's cache."""
        if graph_name not in self.engines and len(self.engines) >= self.quota.max_graphs:
            raise InvalidParameterError(
                f"tenant {self.name!r} is at its max_graphs quota "
                f"({self.quota.max_graphs})"
            )
        engine = CutEngine(graph, seed=seed, epsilon=epsilon, cache=self.cache)
        self.engines[graph_name] = engine
        self.graph_params[graph_name] = {"seed": int(seed), "epsilon": epsilon}
        # a fresh lock per rebinding: an in-flight query on the old
        # engine finishes under the old lock, unserialised against the
        # new binding (they share only the thread-safe cache)
        self.locks[graph_name] = asyncio.Lock()
        return engine

    def engine(self, graph_name: str) -> Tuple[CutEngine, asyncio.Lock]:
        """The engine and its serialization lock, or :class:`UnknownGraph`."""
        engine = self.engines.get(graph_name)
        if engine is None:
            raise UnknownGraph(
                f"tenant {self.name!r} has no graph {graph_name!r} "
                f"(registered: {sorted(self.engines)})"
            )
        return engine, self.locks[graph_name]

    def cache_stats(self) -> Dict[str, float]:
        return {
            "entries": float(len(self.cache)),
            "bytes": float(self.cache.current_bytes),
            "max_entries": float(self.cache.max_entries),
            "max_bytes": float(self.cache.max_bytes),
            "hits": float(self.cache.stats["hits"]),
            "misses": float(self.cache.stats["misses"]),
            "evictions": float(self.cache.stats["evictions"]),
        }


class TenantRegistry:
    """The daemon's tenant table."""

    def __init__(self, default_budget_class: str = "standard") -> None:
        if default_budget_class not in BUDGET_CLASSES:
            raise InvalidParameterError(
                f"unknown budget class {default_budget_class!r}"
            )
        self.default_budget_class = default_budget_class
        self._tenants: Dict[str, Tenant] = {}

    def register(self, name: str, quota: Optional[TenantQuota] = None) -> Tenant:
        """Create tenant ``name`` (idempotent: an existing tenant is
        returned unchanged — quotas are fixed at first registration)."""
        existing = self._tenants.get(name)
        if existing is not None:
            return existing
        tenant = Tenant(
            name,
            quota or TenantQuota(budget_class=self.default_budget_class),
        )
        self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(
                f"unknown tenant {name!r} (registered: {sorted(self._tenants)})"
            )
        return tenant

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: object) -> bool:
        return name in self._tenants

    def items(self):
        return self._tenants.items()
