"""The cut-serving daemon: admission, dispatch, shedding, and the
TCP / in-process front ends.

:class:`CutService` is the transport-agnostic core.  One instance owns

* a :class:`~repro.serve.tenancy.TenantRegistry` (named graphs, each
  fronted by a :class:`~repro.engine.CutEngine` over the tenant's
  quota-bounded :class:`~repro.engine.cache.ArtifactCache`);
* one bounded :class:`~repro.serve.admission.AdmissionQueue` feeding a
  fixed pool of dispatch workers (asyncio tasks; the engine query
  itself runs on a thread so the event loop keeps accepting);
* an :class:`~repro.obs.CounterRegistry` every handler runs under
  (``serve.*`` plus the engine/pipeline counters), exposed by the
  ``metrics`` op;
* a :class:`~repro.resilience.Supervisor` armed around every query, so
  executor-level failures inside the engine degrade
  ``process → thread → sync`` exactly as they do in the resilient
  driver.

**The overload contract.**  Every request the service *accepts*
receives exactly one typed response:

* not admitted (queue full, tenant at its inflight limit, shutdown in
  progress) → ``retry_after`` with a backlog-derived hint;
* admitted but expired while queued → ``deadline_exceeded`` with
  ``shed="queued"`` — the queue never runs dead work;
* admitted and dispatched: the request's deadline becomes a
  :class:`~repro.resilience.Budget` armed around the engine call, so
  expiry mid-query raises at the pipeline's next cooperative
  checkpoint and is answered as ``deadline_exceeded`` with
  ``shed="inflight"`` — never a killed connection;
* any handler exception (including the injected ``serve.handler_crash``
  fault) → a typed ``error`` response on the same connection.

Dispatch workers are wrapped so that *no* exception path can leave an
admitted request's future unresolved — the exactly-one-response
invariant is structural, and ``scripts/chaos_soak.py --service``
hammers it with all four ``serve.*`` fault sites armed.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import BudgetExceeded, ReproError
from repro.graphs.graph import Graph
from repro.obs.counters import CounterRegistry, counting_scope
from repro.resilience.budget import Budget, budget_scope, checkpoint
from repro.resilience.faults import (
    SITE_SERVE_ACCEPT_DROP,
    SITE_SERVE_HANDLER_CRASH,
    SITE_SERVE_QUEUE_STALL,
    SITE_SERVE_SLOW_CLIENT,
    FaultPlan,
    active_plan,
    inject,
)
from repro.resilience.supervisor import Supervisor, supervised_scope
from repro.serve.admission import Admitted, AdmissionQueue
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    OP_VOCABULARY,
    PROTOCOL_VERSION,
    ProtocolError,
    deadline_response,
    error_response,
    ok_response,
    read_frame,
    retry_after_response,
    write_frame,
)
from repro.pram.executor import force_executor
from repro.serve.tenancy import BUDGET_CLASSES, TenantQuota, TenantRegistry

__all__ = [
    "ServerConfig",
    "CutService",
    "TCPServer",
    "InProcServer",
    "ThreadedTCPServer",
    "run_tcp",
]

#: ops admitted through the bounded queue (everything else is answered
#: inline by the acceptor — control traffic must survive saturation)
QUERY_OPS = ("min_cut", "min_cut_batch", "update", "_stall")

#: admitted ops that mutate the engine's bound graph: rejected with a
#: typed ``mutation_forbidden`` error for budget classes registered
#: without write access.
MUTATING_OPS = ("update",)

#: cap on one ``min_cut_batch`` request's seed list
MAX_BATCH = 64

#: cap on one injected stall/slow-client delay, so chaos plans with
#: large ``scale`` cannot wedge a worker past useful timescales
MAX_FAULT_DELAY_S = 0.5


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one daemon instance (CLI flags map onto these 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; TCPServer.port reports the binding
    queue_depth: int = 64
    workers: int = 4
    max_frame_bytes: int = MAX_FRAME_BYTES
    default_budget_class: str = "standard"
    #: allow the ``shutdown`` op (the daemon trusts its network; flip
    #: off when fronted by anything less trusted)
    allow_shutdown: bool = True
    #: enable the ``_stall`` debug op (tests only: a cooperative busy
    #: wait that makes queue-full and shedding deterministic)
    debug_ops: bool = False
    #: supervisor jitter seed (deterministic degradation schedules)
    seed: int = 0
    #: directory for the WAL + snapshots (None = in-memory only, the
    #: historical behavior); see :mod:`repro.durability`
    state_dir: Optional[str] = None
    #: WAL fsync policy: ``always`` | ``batch`` | ``never`` — governs
    #: the ack-durability contract (``docs/service.md``)
    fsync: str = "always"
    #: WAL records between automatic snapshots
    snapshot_interval: int = 64
    #: verified snapshot generations kept after rotation
    snapshot_retention: int = 2


class CutService:
    """Transport-agnostic request service (see the module docstring).

    Parameters
    ----------
    config:
        The daemon knobs.
    registry:
        Counter sink; defaults to a private
        :class:`~repro.obs.CounterRegistry` (the ``metrics`` op
        snapshots it).
    supervisor:
        Executor health model armed around every query; defaults to a
        private :class:`~repro.resilience.Supervisor` seeded from the
        config.
    faults:
        An optional :class:`~repro.resilience.FaultPlan` polled at the
        ``serve.*`` sites (chaos mode).  When None the ambient
        context's plan applies, so ``inject(...)`` works for
        same-context callers too.
    clock:
        Monotonic-seconds source, injectable for deterministic tests.
    """

    def __init__(
        self,
        config: ServerConfig = ServerConfig(),
        *,
        registry: Optional[CounterRegistry] = None,
        supervisor: Optional[Supervisor] = None,
        faults: Optional[FaultPlan] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else CounterRegistry()
        self.supervisor = (
            supervisor if supervisor is not None else Supervisor(seed=config.seed)
        )
        self.faults = faults
        self.clock = clock
        self.tenants = TenantRegistry(config.default_budget_class)
        self.queue = AdmissionQueue(config.queue_depth, clock=clock)
        self._workers: List[asyncio.Task] = []
        self._stopping = False
        self._shutdown_requested = asyncio.Event()
        self.durable = None
        if config.state_dir is not None:
            # imported here, not at module top: repro.durability builds
            # on repro.serve.tenancy, so a module-level import would
            # make the two packages circular
            from repro.durability.state import DurableState

            self.durable = DurableState(
                config.state_dir,
                fsync=config.fsync,
                snapshot_interval=config.snapshot_interval,
                snapshot_retention=config.snapshot_retention,
                faults=faults,
            )
            # recovery replays updates through the real engine path;
            # run it under the service registry so recovery.* / wal.*
            # counters land where the metrics op looks
            with counting_scope(self.registry):
                self.durable.recover(self.tenants)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CutService":
        """Spawn the dispatch workers."""
        for wid in range(self.config.workers):
            self._workers.append(
                asyncio.create_task(self._worker(), name=f"serve-worker-{wid}")
            )
        return self

    async def stop(self) -> None:
        """Stop accepting, answer everything still queued with a typed
        ``retry_after(reason="shutting_down")``, and cancel the workers."""
        self._stopping = True
        for item in self.queue.drain_nowait():
            self._resolve(
                item,
                retry_after_response(
                    item.request.get("id"),
                    retry_after_ms=1000,
                    reason="shutting_down",
                ),
            )
            item.tenant.inflight -= 1
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers.clear()
        if self.durable is not None:
            # final snapshot + clean WAL close; a crashed process skips
            # this, which is exactly what recovery exists for
            await asyncio.to_thread(self.durable.close)

    # ------------------------------------------------------------------
    # fault polling
    # ------------------------------------------------------------------
    def _poll(self, site: str):
        plan = self.faults if self.faults is not None else active_plan()
        if plan is None:
            return None
        fault = plan.poll(site)
        if fault is not None:
            self.registry.add("serve.faults_injected")
            self.registry.add(f"serve.fault.{site.split('.', 1)[1]}")
        return fault

    # ------------------------------------------------------------------
    # the acceptor path
    # ------------------------------------------------------------------
    async def submit(self, request: Any) -> Dict[str, Any]:
        """The full admission path for one request; always returns
        exactly one typed response object."""
        self.registry.add("serve.requests")
        if not isinstance(request, dict) or not isinstance(request.get("op"), str):
            self.registry.add("serve.bad_requests")
            return error_response(
                request.get("id") if isinstance(request, dict) else None,
                code="bad_request",
                message="request must be a JSON object with a string 'op'",
            )
        req_id = request.get("id")
        op = request["op"]
        try:
            if op == "ping":
                return ok_response(req_id, pong=True, protocol=PROTOCOL_VERSION)
            if op in ("metrics", "stats"):
                return self._metrics(req_id)
            if op == "graph_info":
                return self._graph_info(request)
            if op == "register_tenant":
                return self._register_tenant(request)
            if op == "register_graph":
                return await self._register_graph(request)
            if op == "shutdown":
                if not self.config.allow_shutdown:
                    return error_response(
                        req_id, code="forbidden", message="shutdown op is disabled"
                    )
                self._shutdown_requested.set()
                return ok_response(req_id, stopping=True)
            if op in QUERY_OPS:
                if op == "_stall" and not self.config.debug_ops:
                    return error_response(
                        req_id, code="unknown_op", message="unknown op '_stall'"
                    )
                return await self._admit(request)
            self.registry.add("serve.bad_requests")
            return error_response(
                req_id,
                code="unknown_op",
                message=(
                    f"unknown op {op!r} (protocol v{PROTOCOL_VERSION} ops: "
                    f"{sorted(OP_VOCABULARY)})"
                ),
            )
        except ProtocolError as exc:
            self.registry.add("serve.bad_requests")
            return error_response(req_id, code="bad_request", message=str(exc))
        except ReproError as exc:
            self.registry.add("serve.errors")
            return error_response(
                req_id, code=type(exc).__name__, message=str(exc)
            )
        except Exception as exc:  # noqa: BLE001 - the acceptor never throws
            self.registry.add("serve.errors")
            return error_response(
                req_id, code="internal_error", message=f"{type(exc).__name__}: {exc}"
            )

    def _register_tenant(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._required_str(request, "tenant")
        kwargs: Dict[str, Any] = {}
        for fld in ("budget_class",):
            if fld in request:
                kwargs[fld] = str(request[fld])
        for fld in ("cache_entries", "cache_bytes", "max_graphs"):
            if fld in request:
                kwargs[fld] = int(request[fld])
        quota = (
            TenantQuota(**kwargs)
            if kwargs
            else TenantQuota(budget_class=self.config.default_budget_class)
        )
        created = name not in self.tenants
        tenant = self.tenants.register(name, quota)
        if self.durable is not None and created:
            # logged before the ok frame: a tenant the client saw
            # acknowledged exists after a crash (re-registration of an
            # existing name changes nothing, so it is not re-logged)
            self.durable.log_tenant(name, tenant.quota)
        self.registry.add("serve.tenants_registered")
        return ok_response(
            request.get("id"),
            tenant=tenant.name,
            budget_class=tenant.quota.budget_class,
            cache_entries=tenant.quota.cache_entries,
            cache_bytes=tenant.quota.cache_bytes,
        )

    async def _register_graph(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self.tenants.get(self._required_str(request, "tenant"))
        graph_name = self._required_str(request, "graph")
        n = int(request.get("n", 0))
        edges = request.get("edges")
        if not isinstance(edges, list):
            raise ProtocolError("register_graph needs an 'edges' list of [u, v, w]")
        seed = int(request.get("seed", 0))
        epsilon = request.get("epsilon")
        warm = bool(request.get("warm", False))
        registry = self.registry

        durable = self.durable

        def build():
            graph = Graph.from_edges(n, [tuple(e) for e in edges])
            eps = None if epsilon is None else float(epsilon)
            with counting_scope(registry), contextlib.ExitStack() as stack:
                if durable is not None:
                    # registration + WAL append are one atomic unit
                    # under the durability lock, so a concurrent
                    # snapshot never captures the engine without its
                    # log record (or vice versa)
                    stack.enter_context(durable.lock)
                engine = tenant.register_graph(
                    graph_name, graph, seed=seed, epsilon=eps
                )
                if durable is not None:
                    durable.log_graph(
                        tenant.name, graph_name, graph, seed=seed, epsilon=eps
                    )
                if warm:
                    engine.warm()
            return graph

        # graph construction + optional warm-up can be heavy: keep the
        # event loop free (registration is not admission-controlled, but
        # it must not stall accepted queries either)
        graph = await asyncio.to_thread(build)
        self.registry.add("serve.graphs_registered")
        return ok_response(
            request.get("id"),
            tenant=tenant.name,
            graph=graph_name,
            n=graph.n,
            m=graph.m,
            warmed=warm,
        )

    async def _admit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        req_id = request.get("id")
        tenant = self.tenants.get(self._required_str(request, "tenant"))
        if request["op"] != "_stall":
            tenant.engine(self._required_str(request, "graph"))  # existence check
        if self._stopping:
            self.registry.add("serve.rejected_shutdown")
            return retry_after_response(
                req_id, retry_after_ms=1000, reason="shutting_down"
            )
        cls = tenant.budget_class
        if request["op"] in MUTATING_OPS and not cls.allow_mutation:
            self.registry.add("serve.rejected_readonly")
            return error_response(
                req_id,
                code="mutation_forbidden",
                message=(
                    f"budget class {cls.name!r} has no write access; "
                    f"op {request['op']!r} mutates the graph"
                ),
            )
        if tenant.inflight >= cls.max_inflight:
            self.registry.add("serve.rejected_inflight")
            return retry_after_response(
                req_id,
                retry_after_ms=self.queue.retry_after_ms(tenant.inflight),
                reason="tenant_inflight",
            )
        deadline_s = cls.default_deadline_s
        if request.get("deadline_ms") is not None:
            deadline_s = min(float(request["deadline_ms"]) / 1000.0, cls.max_deadline_s)
            if deadline_s <= 0:
                return deadline_response(
                    req_id, shed="queued", message="deadline_ms must be positive"
                )
        item = Admitted(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            tenant=tenant,
            deadline_at=self.clock() + deadline_s,
        )
        if not self.queue.try_put(item):
            self.registry.add("serve.rejected_queue_full")
            return retry_after_response(
                req_id,
                retry_after_ms=self.queue.retry_after_ms(),
                reason="queue_full",
            )
        tenant.inflight += 1
        self.registry.add("serve.admitted")
        return await item.future

    # ------------------------------------------------------------------
    # the dispatch path
    # ------------------------------------------------------------------
    def _resolve(self, item: Admitted, response: Dict[str, Any]) -> None:
        if not item.future.done():
            item.future.set_result(response)
            self.registry.add("serve.responses")

    async def _worker(self) -> None:
        while True:
            item = await self.queue.get()
            fault = self._poll(SITE_SERVE_QUEUE_STALL)
            if fault is not None:
                await asyncio.sleep(min(0.05 * fault.scale, MAX_FAULT_DELAY_S))
            t0 = self.clock()
            try:
                response = await self._handle(item)
            except asyncio.CancelledError:
                # shutdown while mid-request: still answer it
                self._resolve(
                    item,
                    retry_after_response(
                        item.request.get("id"),
                        retry_after_ms=1000,
                        reason="shutting_down",
                    ),
                )
                item.tenant.inflight -= 1
                raise
            except BaseException as exc:  # noqa: BLE001 - the future must resolve
                self.registry.add("serve.errors")
                response = error_response(
                    item.request.get("id"),
                    code="internal_error",
                    message=f"{type(exc).__name__}: {exc}",
                )
            self._resolve(item, response)
            item.tenant.inflight -= 1
            self.queue.observe_service_time(self.clock() - t0)
            self.queue.task_done()

    async def _handle(self, item: Admitted) -> Dict[str, Any]:
        request, req_id = item.request, item.request.get("id")
        now = self.clock()
        if now >= item.deadline_at:
            self.registry.add("serve.shed_queued")
            waited_ms = (now - item.enqueued_at) * 1000.0
            return deadline_response(
                req_id,
                shed="queued",
                message=f"deadline expired after {waited_ms:.0f}ms in queue",
            )
        remaining = item.deadline_at - now
        try:
            payload = await self._execute(item, remaining)
        except BudgetExceeded as exc:
            self.registry.add("serve.shed_inflight")
            return deadline_response(
                req_id, shed="inflight", message=f"shed at checkpoint: {exc}"
            )
        except ProtocolError as exc:
            self.registry.add("serve.bad_requests")
            return error_response(req_id, code="bad_request", message=str(exc))
        except ReproError as exc:
            self.registry.add("serve.errors")
            return error_response(req_id, code=type(exc).__name__, message=str(exc))
        except Exception as exc:  # noqa: BLE001 - crash → typed response
            self.registry.add("serve.errors")
            return error_response(
                req_id, code="handler_crash", message=f"{type(exc).__name__}: {exc}"
            )
        self.registry.add("serve.completed")
        self.registry.add(f"serve.op.{request['op'].lstrip('_')}")
        return ok_response(req_id, **payload)

    async def _execute(self, item: Admitted, remaining: float) -> Dict[str, Any]:
        request = item.request
        op = request["op"]
        if op == "_stall":
            return await asyncio.to_thread(
                self._run_stall, float(request.get("seconds", 0.1)), remaining
            )
        engine, lock = item.tenant.engine(request["graph"])
        backend = self._class_backend(item.tenant.quota.budget_class)
        async with lock:  # CutEngine mutates rng/bindings: serialize per graph
            return await asyncio.to_thread(
                self._run_query, engine, request, remaining, backend
            )

    def _class_backend(self, budget_class: str) -> Optional[str]:
        """The executor backend the tenant's budget class pins, or None.

        A pinned backend the host cannot provide (shm without a usable
        ``/dev/shm``) falls back to the ambient selection and counts
        ``serve.backend_fallbacks`` — queries must degrade, not fail,
        on backend availability."""
        cls = BUDGET_CLASSES.get(budget_class)
        backend = cls.executor_backend if cls is not None else None
        if backend is None:
            return None
        if backend == "shm":
            from repro.shm import shm_available

            if not shm_available():
                self.registry.add("serve.backend_fallbacks")
                return None
        return backend

    def _scoped(self, remaining: float) -> "contextlib.ExitStack":
        """The ambient scopes every query runs under (worker thread):
        the service's counter registry, the request's deadline budget,
        and — when a chaos plan is pinned on the service — that plan,
        so pipeline-level fault sites fire inside served queries too."""
        stack = contextlib.ExitStack()
        stack.enter_context(counting_scope(self.registry))
        stack.enter_context(
            budget_scope(Budget(deadline=remaining, clock=self.clock))
        )
        if self.faults is not None:
            stack.enter_context(inject(self.faults))
        return stack

    def _run_stall(self, seconds: float, remaining: float) -> Dict[str, Any]:
        """Debug op: cooperative busy-wait hitting budget checkpoints,
        so tests can occupy workers deterministically."""
        with self._scoped(remaining):
            t0 = self.clock()
            while self.clock() - t0 < seconds:
                checkpoint("serve._stall")
                time.sleep(0.002)
        return {"stalled_s": seconds}

    def _run_query(
        self,
        engine,
        request: Dict[str, Any],
        remaining: float,
        backend: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One engine query on a worker thread, under the service's
        counter registry, supervisor, the request's deadline budget, and
        (when the tenant's budget class pins one) a forced executor
        backend."""
        with contextlib.ExitStack() as outer:
            if backend is not None:
                outer.enter_context(force_executor(backend))
            return self._run_query_scoped(engine, request, remaining)

    def _run_query_scoped(
        self, engine, request: Dict[str, Any], remaining: float
    ) -> Dict[str, Any]:
        op = request["op"]
        with supervised_scope(self.supervisor), self._scoped(remaining):
            fault = self._poll(SITE_SERVE_HANDLER_CRASH)
            if fault is not None:
                raise RuntimeError("injected handler crash (serve.handler_crash)")
            if op == "min_cut":
                res = engine.min_cut()
                return self._result_payload(request, res, engine)
            if op == "update":
                kwargs = self._parse_update(request)
                with contextlib.ExitStack() as stack:
                    if self.durable is not None:
                        # {apply + log} is atomic under the durability
                        # lock; the record lands before the response
                        # frame, so an acked mutation survives a crash
                        # (ack-implies-durable under fsync=always)
                        stack.enter_context(self.durable.lock)
                    upd = engine.update(**kwargs)
                    if self.durable is not None and not upd.noop:
                        self.durable.log_update(
                            request["tenant"],
                            request["graph"],
                            kwargs,
                            {
                                "epoch": upd.epoch,
                                "staleness": upd.staleness,
                                "value": upd.value,
                                "fingerprint": engine.fingerprint_chain()[
                                    "current"
                                ]["fingerprint"],
                            },
                        )
                payload = self._result_payload(request, upd.result, engine)
                payload.update(
                    update=1.0,
                    noop=upd.noop,
                    rebased=upd.rebased,
                    rebase_reason=upd.rebase_reason,
                    applied=upd.applied,
                    verified=(
                        None if upd.verification is None
                        else bool(upd.verification.ok)
                    ),
                )
                return payload
            if op == "min_cut_batch":
                seeds = request.get("seeds")
                if not isinstance(seeds, list) or not seeds:
                    raise ProtocolError("min_cut_batch needs a non-empty 'seeds' list")
                if len(seeds) > MAX_BATCH:
                    raise ProtocolError(
                        f"batch of {len(seeds)} exceeds the {MAX_BATCH}-seed cap"
                    )
                results = engine.min_cut_batch([int(s) for s in seeds])
                return {
                    "values": [float(r.value) for r in results],
                    "epoch": engine.epoch,
                }
            raise ProtocolError(f"unroutable query op {op!r}")  # pragma: no cover

    @staticmethod
    def _parse_reweight(weights, message: str):
        if isinstance(weights, dict):
            return {int(k): float(v) for k, v in weights.items()}
        if isinstance(weights, list):
            return [float(v) for v in weights]
        raise ProtocolError(message)

    def _parse_update(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The ``update`` op's wire fields, validated into
        :meth:`CutEngine.update` keywords."""
        add_edges = request.get("add_edges")
        remove_edges = request.get("remove_edges")
        reweight = request.get("reweight")
        if add_edges is None and remove_edges is None and reweight is None:
            raise ProtocolError(
                "update needs at least one of 'add_edges' ([u, v, w] "
                "triples), 'remove_edges' (edge indices), 'reweight' "
                "({edge_index: w} or a full list)"
            )
        kwargs: Dict[str, Any] = {}
        if add_edges is not None:
            if not isinstance(add_edges, list):
                raise ProtocolError("'add_edges' must be a list of [u, v, w]")
            kwargs["add_edges"] = [tuple(e) for e in add_edges]
        if remove_edges is not None:
            if not isinstance(remove_edges, list):
                raise ProtocolError("'remove_edges' must be a list of edge indices")
            kwargs["remove_edges"] = [int(i) for i in remove_edges]
        if reweight is not None:
            kwargs["reweight"] = self._parse_reweight(
                reweight, "'reweight' must be {edge_index: w} or a full list"
            )
        return kwargs

    @staticmethod
    def _result_payload(request: Dict[str, Any], res, engine) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "value": float(res.value),
            # the per-graph epoch rides on every result so clients
            # detect a concurrent mutation (or rebase) under their feet
            "epoch": engine.epoch,
            "staleness": engine.staleness,
        }
        stats = dict(res.stats)
        for key in ("num_trees", "rebased", "update"):
            if key in stats:
                payload[key] = float(stats[key])
        if request.get("return_side"):
            side = res.side
            small = side if side.sum() * 2 <= side.shape[0] else ~side
            payload["side"] = [int(i) for i in small.nonzero()[0]]
        return payload

    def _graph_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Inline (non-admitted) introspection of one registered graph:
        epoch, staleness, fingerprint, write access, and the tenant's
        cache stats — what a client polls to detect concurrent mutation
        without paying for a query."""
        tenant = self.tenants.get(self._required_str(request, "tenant"))
        graph_name = self._required_str(request, "graph")
        engine, _ = tenant.engine(graph_name)
        cls = tenant.budget_class
        chain = engine.fingerprint_chain()
        return ok_response(
            request.get("id"),
            tenant=tenant.name,
            graph=graph_name,
            n=engine.graph.n,
            m=engine.graph.m,
            epoch=engine.epoch,
            staleness=engine.staleness,
            staleness_ratio=engine.staleness_ratio,
            fingerprint=chain["current"]["fingerprint"],
            budget_class=tenant.quota.budget_class,
            writable=cls.allow_mutation,
            durable=self.durable is not None,
            cache=tenant.cache_stats(),
            protocol=PROTOCOL_VERSION,
        )

    # ------------------------------------------------------------------
    def _metrics(self, req_id: Any) -> Dict[str, Any]:
        return ok_response(
            req_id,
            counters=self.registry.snapshot(),
            queue=self.queue.stats(),
            tenants={
                name: {
                    "budget_class": tenant.quota.budget_class,
                    "graphs": len(tenant.engines),
                    "inflight": tenant.inflight,
                    "cache": tenant.cache_stats(),
                }
                for name, tenant in self.tenants.items()
            },
            durability=(
                None if self.durable is None else self.durable.stats()
            ),
        )

    @staticmethod
    def _required_str(request: Dict[str, Any], fld: str) -> str:
        value = request.get(fld)
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"request op {request.get('op')!r} needs {fld!r}")
        return value


# ---------------------------------------------------------------------------
# front ends
# ---------------------------------------------------------------------------
class TCPServer:
    """The daemon's socket front end: length-prefixed JSON over TCP.

    One connection handles requests strictly in order (clients wanting
    concurrency open several connections — the load generator and the
    chaos soak both do).  Malformed framing is answered with one
    ``bad_request`` response, then the connection closes.
    """

    def __init__(self, service: CutService) -> None:
        self.service = service
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self.port: Optional[int] = None

    async def start(self) -> "TCPServer":
        await self.service.start()
        cfg = self.service.config
        self._server = await asyncio.start_server(
            self._on_connection, host=cfg.host, port=cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Serve until the ``shutdown`` op (or cancellation)."""
        await self.service._shutdown_requested.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # established connections don't die with the listener: close
        # them too, so a stopped server looks to its clients exactly
        # like an exited process (EOF mid-frame), not a silent hang
        for writer in list(self._connections):
            writer.close()
        await self.service.stop()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        service = self.service
        service.registry.add("serve.connections")
        if service._poll(SITE_SERVE_ACCEPT_DROP) is not None:
            # dropped before any frame is read: nothing was accepted,
            # so no response is owed — the client sees a clean reset
            service.registry.add("serve.accept_drops")
            writer.close()
            return
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, service.config.max_frame_bytes
                    )
                except ProtocolError as exc:
                    service.registry.add("serve.bad_requests")
                    await write_frame(
                        writer,
                        error_response(None, code="bad_request", message=str(exc)),
                    )
                    break
                if request is None:
                    break  # clean EOF
                response = await service.submit(request)
                fault = service._poll(SITE_SERVE_SLOW_CLIENT)
                if fault is not None:
                    await asyncio.sleep(min(0.05 * fault.scale, MAX_FAULT_DELAY_S))
                await write_frame(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing further is owed
        except asyncio.CancelledError:
            # server shutdown cancelled this connection task mid-read;
            # finish normally so the loop doesn't log a phantom error
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


class InProcServer:
    """A same-process daemon for tests and single-process benchmarks.

    Runs a :class:`CutService` on a private event loop in a daemon
    thread and exposes the blocking :meth:`request` — the *same*
    admission, dispatch, and shedding path as TCP, minus the socket
    hop.  Thread-safe: many client threads may call :meth:`request`
    concurrently (the chaos soak does).
    """

    def __init__(self, config: ServerConfig = ServerConfig(), **service_kwargs: Any):
        self.service = CutService(config, **service_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "InProcServer":
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(started.set)
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="inproc-serve", daemon=True)
        self._thread.start()
        started.wait()
        asyncio.run_coroutine_threadsafe(self.service.start(), self._loop).result(10)
        return self

    def stop(self) -> None:
        if self._loop is None:
            return
        asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop).result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "InProcServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the client face ----------------------------------------------------
    def request(self, request: Dict[str, Any], timeout: float = 60.0) -> Dict[str, Any]:
        """Submit one request and block for its single typed response."""
        assert self._loop is not None, "InProcServer not started"
        fut = asyncio.run_coroutine_threadsafe(
            self.service.submit(request), self._loop
        )
        return fut.result(timeout)


class ThreadedTCPServer:
    """A :class:`TCPServer` on a private event loop in a daemon thread.

    The blocking counterpart of :class:`InProcServer` for callers that
    need a real socket in the same process — tests, the load generator,
    and the chaos soak all start the daemon this way, then talk to it
    through :class:`~repro.serve.client.ServiceClient` connections.
    """

    def __init__(self, config: ServerConfig = ServerConfig(), **service_kwargs: Any):
        self.server = TCPServer(CutService(config, **service_kwargs))
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def service(self) -> CutService:
        return self.server.service

    @property
    def port(self) -> int:
        assert self.server.port is not None, "ThreadedTCPServer not started"
        return self.server.port

    def start(self) -> "ThreadedTCPServer":
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(started.set)
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="tcp-serve", daemon=True)
        self._thread.start()
        started.wait()
        asyncio.run_coroutine_threadsafe(self.server.start(), self._loop).result(10)
        return self

    def stop(self) -> None:
        if self._loop is None:
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ThreadedTCPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def run_tcp(config: ServerConfig, **service_kwargs: Any) -> None:
    """Run the TCP daemon in the foreground until the ``shutdown`` op
    (requires ``allow_shutdown=True``) or KeyboardInterrupt.  This is
    what ``python -m repro serve`` calls."""

    async def main() -> None:
        server = TCPServer(CutService(config, **service_kwargs))
        await server.start()
        print(f"repro.serve listening on {config.host}:{server.port}", flush=True)
        try:
            await server.serve_until_shutdown()
        except asyncio.CancelledError:
            await server.stop()
            raise

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
