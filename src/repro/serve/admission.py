"""Bounded admission queue with typed backpressure.

Admission is the daemon's overload valve: a query either enters the
bounded FIFO (and is then *guaranteed* exactly one response — a result,
or a typed shed), or it is rejected immediately with a
``retry_after`` response.  Nothing ever blocks an acceptor on a full
queue, so a saturated daemon keeps answering cheap control ops
(``ping``, ``metrics``) and keeps telling clients *when* to come back.

The retry hint is an EWMA of recent service times scaled by the queue
backlog — under a sustained overload it grows with the backlog, giving
well-behaved clients an approximate token-bucket pacing without any
per-client state on the server.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.errors import InvalidParameterError

__all__ = ["Admitted", "AdmissionQueue"]


@dataclass
class Admitted:
    """One admitted request travelling from acceptor to worker."""

    request: Dict[str, Any]
    future: "asyncio.Future[Dict[str, Any]]"
    tenant: Any  # Tenant; typed loosely to avoid an import cycle
    #: absolute clock time the request's deadline expires (never None:
    #: every admitted query carries one, from the request or its budget
    #: class default)
    deadline_at: float
    enqueued_at: float = field(default=0.0)


class AdmissionQueue:
    """A bounded FIFO with non-blocking admission and a retry-after hint.

    Parameters
    ----------
    depth:
        Maximum queued (admitted, not yet dispatched) requests.
    clock:
        Monotonic-seconds source, injectable for deterministic tests.
    """

    def __init__(self, depth: int, clock: Callable[[], float] = time.monotonic) -> None:
        if depth < 1:
            raise InvalidParameterError("admission queue depth must be >= 1")
        self.depth = int(depth)
        self.clock = clock
        self._q: "asyncio.Queue[Admitted]" = asyncio.Queue(maxsize=self.depth)
        self.high_water = 0
        #: EWMA of worker service seconds; seeds at 50 ms so the first
        #: hints are sane before any completion is observed
        self.ewma_service_s = 0.05

    # ------------------------------------------------------------------
    def try_put(self, item: Admitted) -> bool:
        """Admit ``item`` if the queue has room; never blocks."""
        item.enqueued_at = self.clock()
        try:
            self._q.put_nowait(item)
        except asyncio.QueueFull:
            return False
        self.high_water = max(self.high_water, self._q.qsize())
        return True

    async def get(self) -> Admitted:
        return await self._q.get()

    def task_done(self) -> None:
        self._q.task_done()

    def drain_nowait(self) -> "list[Admitted]":
        """Empty the queue without dispatching (shutdown path); the
        caller owes every drained item its one response."""
        items = []
        while True:
            try:
                items.append(self._q.get_nowait())
            except asyncio.QueueEmpty:
                break
            self._q.task_done()
        return items

    # ------------------------------------------------------------------
    def observe_service_time(self, seconds: float) -> None:
        """Fold one completed request's service time into the EWMA."""
        self.ewma_service_s = 0.8 * self.ewma_service_s + 0.2 * max(seconds, 0.0)

    def retry_after_ms(self, extra_backlog: int = 0) -> int:
        """The backpressure hint: expected time for the current backlog
        (plus ``extra_backlog`` requests ahead of the caller elsewhere,
        e.g. a tenant's own inflight) to drain, clamped to [10 ms, 10 s]."""
        backlog = self._q.qsize() + extra_backlog + 1
        hint = self.ewma_service_s * backlog * 1000.0
        return int(min(max(hint, 10.0), 10_000.0))

    def qsize(self) -> int:
        return self._q.qsize()

    def stats(self) -> Dict[str, float]:
        return {
            "depth": float(self.depth),
            "size": float(self._q.qsize()),
            "high_water": float(self.high_water),
            "ewma_service_ms": self.ewma_service_s * 1000.0,
        }
