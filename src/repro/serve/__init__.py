"""The cut-serving daemon: a long-running, multi-tenant service shell
around :class:`repro.engine.CutEngine`.

Layout:

* :mod:`repro.serve.protocol` — length-prefixed JSON framing and the
  typed response vocabulary (``result`` / ``retry_after`` /
  ``deadline_exceeded`` / ``error``);
* :mod:`repro.serve.tenancy` — tenants, per-tenant
  :class:`~repro.engine.cache.ArtifactCache` quotas, budget classes;
* :mod:`repro.serve.admission` — the bounded admission queue with
  backpressure hints;
* :mod:`repro.serve.server` — :class:`CutService` (the transport-less
  core), :class:`TCPServer` (asyncio sockets), :class:`InProcServer`
  (same-process, for tests and benchmarks);
* :mod:`repro.serve.client` — the blocking :class:`ServiceClient`.

``python -m repro serve`` runs the TCP daemon;
``scripts/bench_service.py`` load-tests it and
``scripts/chaos_soak.py --service`` soaks it under injected
``serve.*`` faults.  Protocol, tenancy, and shedding semantics are
documented in ``docs/service.md``.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.client import ServiceClient
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    DeadlineExceeded,
    ProtocolError,
    RetryAfter,
    ServiceError,
    well_formed,
)
from repro.serve.server import (
    CutService,
    InProcServer,
    ServerConfig,
    TCPServer,
    ThreadedTCPServer,
    run_tcp,
)
from repro.serve.tenancy import (
    BUDGET_CLASSES,
    BudgetClass,
    Tenant,
    TenantQuota,
    TenantRegistry,
    UnknownGraph,
    UnknownTenant,
)

__all__ = [
    "ServerConfig",
    "CutService",
    "TCPServer",
    "ThreadedTCPServer",
    "InProcServer",
    "run_tcp",
    "ServiceClient",
    "AdmissionQueue",
    "BudgetClass",
    "BUDGET_CLASSES",
    "TenantQuota",
    "Tenant",
    "TenantRegistry",
    "UnknownTenant",
    "UnknownGraph",
    "ProtocolError",
    "ServiceError",
    "RetryAfter",
    "DeadlineExceeded",
    "well_formed",
    "MAX_FRAME_BYTES",
]
