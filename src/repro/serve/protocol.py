"""Wire protocol of the cut-serving daemon: length-prefixed JSON frames
and the typed response vocabulary.

Framing
-------
A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Both directions use the same framing; a frame
longer than the negotiated cap, a non-JSON body, or a non-object
payload is a :class:`ProtocolError` (the server answers it with one
``bad_request`` response and closes the connection — never a silent
drop).

Requests
--------
Every request is a JSON object with an ``op`` field and an optional
``id`` the server echoes verbatim (clients use it to match pipelined
responses).  The op vocabulary is **versioned**: :data:`OP_VOCABULARY`
maps every known op to the protocol version that introduced it, and
:data:`PROTOCOL_VERSION` (echoed by ``ping`` and ``graph_info``) is
the version this daemon speaks — version 2 added the mutation surface
(``update``) and ``graph_info``; version 3 removed the deprecated
weight-only mutation spelling and added durable state (``serve --state-dir``:
``graph_info`` reports ``durable``, ``metrics`` reports ``durability``).
The op table, field-by-field, lives in ``docs/service.md``.

Responses
---------
Every *accepted* request receives **exactly one** response, always one
of four types:

==================  ====  ==============================================
``type``            ok    meaning
==================  ====  ==============================================
``result``          yes   the answer payload (op-specific fields)
``retry_after``     no    backpressure: not admitted; retry in
                          ``retry_after_ms`` (``reason`` says which
                          limit fired)
``deadline_exceeded``  no  admitted, then shed: the request's deadline
                          expired while queued (``shed="queued"``) or
                          mid-query at a cooperative checkpoint
                          (``shed="inflight"``)
``error``           no    a typed failure (``error`` is a stable code,
                          ``message`` human-readable); includes
                          malformed requests (``error="bad_request"``)
==================  ====  ==============================================

:func:`well_formed` checks a response against this table — the chaos
soak and the load generator gate on it for every single response.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.errors import ReproError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "OP_VOCABULARY",
    "ProtocolError",
    "ServiceError",
    "RetryAfter",
    "DeadlineExceeded",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "ok_response",
    "retry_after_response",
    "deadline_response",
    "error_response",
    "well_formed",
    "RESPONSE_TYPES",
]

#: default cap on one frame's JSON body (requests and responses alike)
MAX_FRAME_BYTES = 8 * 2**20

#: the protocol version this daemon speaks; bumped whenever an op is
#: added or a response field changes meaning.  v1: the PR 7 vocabulary
#: (queries + control).  v2: the mutation surface — ``update``,
#: ``graph_info``, per-graph ``epoch``/``staleness`` echoed on query
#: responses, and write-access enforcement per budget class.  v3: the
#: deprecated weight-only mutation op's runway expired (``update`` with
#: ``reweight`` is the one spelling), and durable-state introspection
#: landed (``durable`` on ``graph_info``, ``durability`` on ``metrics``).
PROTOCOL_VERSION = 3

#: every op the daemon routes → the protocol version that introduced it
OP_VOCABULARY: Dict[str, int] = {
    "ping": 1,
    "metrics": 1,
    "stats": 1,
    "register_tenant": 1,
    "register_graph": 1,
    "shutdown": 1,
    "min_cut": 1,
    "min_cut_batch": 1,
    "update": 2,
    "graph_info": 2,
}

_HEADER = struct.Struct(">I")

RESPONSE_TYPES = ("result", "retry_after", "deadline_exceeded", "error")


class ProtocolError(ReproError):
    """A frame-level violation: oversized frame, undecodable body, or a
    payload that is not a JSON object."""


class ServiceError(ReproError):
    """A typed ``error`` response, raised client-side by
    :meth:`repro.serve.client.ServiceClient.call`.

    Attributes
    ----------
    code:
        The stable ``error`` code from the response (``"bad_request"``,
        ``"unknown_tenant"``, ``"handler_crash"``, ...).
    response:
        The full response object, for callers needing more context.
    """

    def __init__(self, message: str, *, code: str = "error", response: Optional[dict] = None):
        super().__init__(message)
        self.code = code
        self.response = response or {}


class RetryAfter(ServiceError):
    """A typed backpressure rejection: the request was **not** admitted.

    ``retry_after_ms`` is the server's hint for when capacity is likely
    back (derived from queue depth and the recent service-time EWMA).
    """

    def __init__(self, message: str, *, retry_after_ms: int = 100,
                 reason: str = "queue_full", response: Optional[dict] = None):
        super().__init__(message, code="retry_after", response=response)
        self.retry_after_ms = int(retry_after_ms)
        self.reason = reason


class DeadlineExceeded(ServiceError):
    """A typed shed: the request was admitted but its deadline expired
    (while queued, or mid-query at a cooperative budget checkpoint)."""

    def __init__(self, message: str, *, shed: str = "inflight",
                 response: Optional[dict] = None):
        super().__init__(message, code="deadline_exceeded", response=response)
        self.shed = shed


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def encode_frame(obj: Dict[str, Any], max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """``obj`` as one length-prefixed frame (header + UTF-8 JSON body)."""
    body = json.dumps(obj, separators=(",", ":"), allow_nan=False).encode("utf-8")
    if len(body) > max_frame:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_frame}-byte cap"
        )
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, Any]:
    """One frame body back into a request/response object."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}"
        )
    return obj


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """The next frame from ``reader``, or None on clean EOF before a
    header byte.  A truncated frame or an oversized length is a
    :class:`ProtocolError`."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds the {max_frame}-byte cap"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(body)


async def write_frame(
    writer: asyncio.StreamWriter, obj: Dict[str, Any],
    max_frame: int = MAX_FRAME_BYTES,
) -> None:
    """Write ``obj`` as one frame and drain the transport."""
    writer.write(encode_frame(obj, max_frame))
    await writer.drain()


# ---------------------------------------------------------------------------
# typed responses
# ---------------------------------------------------------------------------
def _base(req_id: Any, ok: bool, rtype: str) -> Dict[str, Any]:
    return {"id": req_id, "ok": ok, "type": rtype}


def ok_response(req_id: Any, **payload: Any) -> Dict[str, Any]:
    resp = _base(req_id, True, "result")
    resp.update(payload)
    return resp


def retry_after_response(
    req_id: Any, *, retry_after_ms: int, reason: str
) -> Dict[str, Any]:
    resp = _base(req_id, False, "retry_after")
    resp["retry_after_ms"] = int(retry_after_ms)
    resp["reason"] = reason
    return resp


def deadline_response(req_id: Any, *, shed: str, message: str) -> Dict[str, Any]:
    resp = _base(req_id, False, "deadline_exceeded")
    resp["shed"] = shed
    resp["message"] = message
    return resp


def error_response(req_id: Any, *, code: str, message: str) -> Dict[str, Any]:
    resp = _base(req_id, False, "error")
    resp["error"] = code
    resp["message"] = message
    return resp


def well_formed(resp: Any, req_id: Any = None, *, check_id: bool = False) -> bool:
    """True iff ``resp`` satisfies the typed-response table (and, with
    ``check_id``, echoes ``req_id``).  The soak/bench gate."""
    if not isinstance(resp, dict):
        return False
    if resp.get("type") not in RESPONSE_TYPES:
        return False
    if not isinstance(resp.get("ok"), bool):
        return False
    if resp["ok"] != (resp["type"] == "result"):
        return False
    if check_id and resp.get("id") != req_id:
        return False
    if resp["type"] == "retry_after":
        if not isinstance(resp.get("retry_after_ms"), int) or "reason" not in resp:
            return False
    if resp["type"] == "deadline_exceeded" and resp.get("shed") not in (
        "queued",
        "inflight",
    ):
        return False
    if resp["type"] == "error":
        if not resp.get("error") or "message" not in resp:
            return False
    return True
