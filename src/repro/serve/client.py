"""A blocking TCP client for the cut-serving daemon.

Used by the load generator (``scripts/bench_service.py``), the chaos
soak (``scripts/chaos_soak.py --service``), and the tests; also a
reasonable starting point for real callers.  One client owns one
connection and issues requests strictly in order — open several
clients for concurrency, exactly as the daemon's connection model
expects.

:meth:`ServiceClient.request` returns the raw typed response object;
:meth:`ServiceClient.call` additionally raises the typed exceptions
(:class:`~repro.serve.protocol.RetryAfter`,
:class:`~repro.serve.protocol.DeadlineExceeded`,
:class:`~repro.serve.protocol.ServiceError`) so library-style callers
can handle backpressure with ``except RetryAfter``.

:meth:`ServiceClient.call_with_retry` additionally survives a daemon
restart: a connection torn mid-call (``ECONNRESET`` /
``BrokenPipeError``, or refused while the daemon is coming back up) is
retried over a fresh connection with bounded, jittered backoff, counted
under ``client.reconnects``.  Note the at-least-once caveat: a request
whose connection died *after* the server processed it may be re-sent,
so only retry mutations that are idempotent or whose duplicate ack is
acceptable (the chaos soak's crash trials account for exactly this).
"""

from __future__ import annotations

import itertools
import random
import socket
import struct
import time
from typing import Any, Dict, Optional

from repro import obs
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    DeadlineExceeded,
    ProtocolError,
    RetryAfter,
    ServiceError,
    decode_payload,
    encode_frame,
)

__all__ = ["ServiceClient"]

_HEADER = struct.Struct(">I")


class ServiceClient:
    """One blocking connection to a :class:`~repro.serve.TCPServer`.

    Parameters
    ----------
    host, port:
        The daemon's binding.
    timeout:
        Socket timeout in seconds for connect and each response read; a
        timeout raises ``socket.timeout`` (the daemon's contract is that
        this never fires for an accepted request — the chaos soak gates
        on it).
    max_frame:
        Frame-size cap, matching the server's.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        #: reconnects performed by :meth:`call_with_retry` over this
        #: client's lifetime (also counted under ``client.reconnects``)
        self.reconnects = 0

    # -- lifecycle ----------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- I/O ----------------------------------------------------------------
    def _recv_exact(self, nbytes: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = nbytes
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ProtocolError("server closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request (assigning an ``id`` if absent) and block
        for its single response."""
        self.connect()
        if "id" not in request:
            request = {**request, "id": next(self._ids)}
        assert self._sock is not None
        self._sock.sendall(encode_frame(request, self.max_frame))
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > self.max_frame:
            raise ProtocolError(f"server announced oversized {length}-byte frame")
        return decode_payload(self._recv_exact(length))

    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`request` but raising the typed exceptions on any
        non-``result`` response."""
        resp = self.request(request)
        if resp.get("ok"):
            return resp
        rtype = resp.get("type")
        if rtype == "retry_after":
            raise RetryAfter(
                f"not admitted ({resp.get('reason')})",
                retry_after_ms=resp.get("retry_after_ms", 100),
                reason=resp.get("reason", "queue_full"),
                response=resp,
            )
        if rtype == "deadline_exceeded":
            raise DeadlineExceeded(
                resp.get("message", "deadline exceeded"),
                shed=resp.get("shed", "inflight"),
                response=resp,
            )
        raise ServiceError(
            resp.get("message", "service error"),
            code=resp.get("error", "error"),
            response=resp,
        )

    #: connection failures :meth:`call_with_retry` reconnects through —
    #: the shapes a daemon restart presents: reset mid-read, broken pipe
    #: on send, refused while the listener is down, EOF mid-frame (the
    #: ProtocolError :meth:`_recv_exact` raises is filtered by message)
    _RECONNECTABLE = (
        ConnectionResetError,
        BrokenPipeError,
        ConnectionRefusedError,
        ConnectionAbortedError,
    )

    def call_with_retry(
        self,
        request: Dict[str, Any],
        *,
        attempts: int = 8,
        reconnects: int = 4,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
    ) -> Dict[str, Any]:
        """Honor ``retry_after`` backpressure up to ``attempts`` times
        (sleeping the server's hint between tries), and survive up to
        ``reconnects`` torn connections — a restarting daemon — with
        exponential, jittered backoff starting at ``backoff_s``.

        Raises the final :class:`RetryAfter` once admission attempts
        are exhausted, or the final socket error once reconnection
        attempts are; see the module docstring for the at-least-once
        caveat on re-sent requests.
        """
        last_admission: Optional[RetryAfter] = None
        last_socket: Optional[Exception] = None
        torn = 0
        for _ in range(attempts):
            try:
                return self.call(request)
            except RetryAfter as exc:
                last_admission = exc
                time.sleep(exc.retry_after_ms / 1000.0)
            except (self._RECONNECTABLE + (ProtocolError,)) as exc:
                if isinstance(exc, ProtocolError) and "mid-frame" not in str(exc):
                    raise  # a real framing violation, not a dead server
                last_socket = exc
                if torn >= reconnects:
                    raise
                torn += 1
                self.reconnects += 1
                obs.counters().add("client.reconnects")
                self.close()
                delay = min(backoff_s * 2 ** (torn - 1), max_backoff_s)
                time.sleep(delay * (0.5 + 0.5 * random.random()))
        if last_admission is not None:
            raise last_admission
        assert last_socket is not None  # attempts exhausted reconnecting
        raise last_socket
