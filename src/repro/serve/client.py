"""A blocking TCP client for the cut-serving daemon.

Used by the load generator (``scripts/bench_service.py``), the chaos
soak (``scripts/chaos_soak.py --service``), and the tests; also a
reasonable starting point for real callers.  One client owns one
connection and issues requests strictly in order — open several
clients for concurrency, exactly as the daemon's connection model
expects.

:meth:`ServiceClient.request` returns the raw typed response object;
:meth:`ServiceClient.call` additionally raises the typed exceptions
(:class:`~repro.serve.protocol.RetryAfter`,
:class:`~repro.serve.protocol.DeadlineExceeded`,
:class:`~repro.serve.protocol.ServiceError`) so library-style callers
can handle backpressure with ``except RetryAfter``.
"""

from __future__ import annotations

import itertools
import socket
import struct
import time
from typing import Any, Dict, Optional

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    DeadlineExceeded,
    ProtocolError,
    RetryAfter,
    ServiceError,
    decode_payload,
    encode_frame,
)

__all__ = ["ServiceClient"]

_HEADER = struct.Struct(">I")


class ServiceClient:
    """One blocking connection to a :class:`~repro.serve.TCPServer`.

    Parameters
    ----------
    host, port:
        The daemon's binding.
    timeout:
        Socket timeout in seconds for connect and each response read; a
        timeout raises ``socket.timeout`` (the daemon's contract is that
        this never fires for an accepted request — the chaos soak gates
        on it).
    max_frame:
        Frame-size cap, matching the server's.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None

    # -- lifecycle ----------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- I/O ----------------------------------------------------------------
    def _recv_exact(self, nbytes: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = nbytes
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ProtocolError("server closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request (assigning an ``id`` if absent) and block
        for its single response."""
        self.connect()
        if "id" not in request:
            request = {**request, "id": next(self._ids)}
        assert self._sock is not None
        self._sock.sendall(encode_frame(request, self.max_frame))
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > self.max_frame:
            raise ProtocolError(f"server announced oversized {length}-byte frame")
        return decode_payload(self._recv_exact(length))

    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`request` but raising the typed exceptions on any
        non-``result`` response."""
        resp = self.request(request)
        if resp.get("ok"):
            return resp
        rtype = resp.get("type")
        if rtype == "retry_after":
            raise RetryAfter(
                f"not admitted ({resp.get('reason')})",
                retry_after_ms=resp.get("retry_after_ms", 100),
                reason=resp.get("reason", "queue_full"),
                response=resp,
            )
        if rtype == "deadline_exceeded":
            raise DeadlineExceeded(
                resp.get("message", "deadline exceeded"),
                shed=resp.get("shed", "inflight"),
                response=resp,
            )
        raise ServiceError(
            resp.get("message", "service error"),
            code=resp.get("error", "error"),
            response=resp,
        )

    def call_with_retry(
        self, request: Dict[str, Any], *, attempts: int = 8
    ) -> Dict[str, Any]:
        """Honor ``retry_after`` backpressure up to ``attempts`` times,
        sleeping the server's hint between tries."""
        last: Optional[RetryAfter] = None
        for _ in range(attempts):
            try:
                return self.call(request)
            except RetryAfter as exc:
                last = exc
                time.sleep(exc.retry_after_ms / 1000.0)
        assert last is not None
        raise last
