"""The exact parallel minimum cut (Theorems 4.1 and 4.26) — the paper's
headline algorithm and this library's main entry point.

    approximate (Section 3)  ->  skeleton + tree packing (Section 4.2)
        ->  per-tree minimum 2-respecting cut (Section 4.1)  ->  min.

Every candidate tree's 2-respecting search runs in a logically-parallel
ledger branch (the searches are independent — Section 4's equations (1)
and (2)); each inspected value is a genuine cut of G, so the result is
always an upper bound on the minimum cut and equals it w.h.p. (and in
``thorough`` mode — testing *every* distinct packed tree — the failure
probability at benchmark scale is unobservably small; see DESIGN.md
section 5).
"""

from __future__ import annotations

import math
from typing import Literal, Optional

import numpy as np

from repro.errors import GraphFormatError, InvalidParameterError
from repro.graphs.graph import Graph
from repro.graphs.validate import ensure_finite_weights
from repro.packing.karger import pack_trees
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import checkpoint as _checkpoint
from repro.results import CutResult
from repro.sparsify.hierarchy import HierarchyParams
from repro.sparsify.skeleton import SkeletonParams
from repro.tworespect.algorithm import two_respecting_min_cut

__all__ = ["minimum_cut", "branching_for_epsilon"]


def branching_for_epsilon(n: int, epsilon: Optional[float]) -> int:
    """Range-tree degree ``max(2, round(n^epsilon))`` (Section 4.3).

    ``epsilon=None`` (or any value driving the degree to 2) selects the
    general-graph structure of Lemma 4.9.
    """
    if epsilon is not None and epsilon <= 0:
        raise InvalidParameterError("epsilon must be positive")
    if epsilon is None or n < 2:
        return 2
    return max(2, int(round(n**epsilon)))


def minimum_cut(
    graph: Graph,
    *,
    epsilon: Optional[float] = None,
    approx_value: Optional[float] = None,
    max_trees: int | None | Literal["auto"] = "auto",
    decomposition: Literal["heavy", "bough"] = "heavy",
    skeleton_params: SkeletonParams = SkeletonParams(),
    hierarchy_params: Optional[HierarchyParams] = None,
    packing_iterations: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> CutResult:
    """Minimum cut of a weighted undirected graph, w.h.p. exact.

    Parameters
    ----------
    graph:
        The input.  Disconnected inputs return value 0 with a component
        as the side mask.
    epsilon:
        The Section 4.3 work/query tradeoff knob: range trees of degree
        ``~n^epsilon`` give O(m/eps + n^{1+2eps} log n / eps^2 + n log n)
        work for the cut-finding step.  ``None`` = degree-2 trees
        (the general Theorem 4.1 configuration).
    approx_value:
        A known O(1)-approximation of the min cut; skips the Section 3
        stage (used, e.g., when called *from* that stage on certificate
        layers whose expected cut is known — Claim 3.20).
    max_trees:
        How many candidate trees the cut-finding step tests.  ``"auto"``
        (default) samples ``ceil(3 log2 n)`` distinct trees proportional
        to packing multiplicity — the paper's O(log n) schedule.  An int
        samples that many; ``None`` = thorough mode, every distinct
        packed tree (O(log^2 n) worst case).
    decomposition:
        Path decomposition flavour for the 2-respecting search.
    rng:
        Seeded generator; the algorithm is deterministic given it.

    Returns
    -------
    CutResult — value, side mask, witness tree edges, stage statistics.
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    ensure_finite_weights(graph)
    k, labels = graph.connected_components()
    if k > 1:
        return CutResult(value=0.0, side=labels == labels[0], stats={"num_trees": 0.0})
    if graph.n == 2:
        return CutResult(
            value=graph.total_weight,
            side=np.array([True, False]),
            stats={"num_trees": 0.0},
        )
    rng = rng if rng is not None else np.random.default_rng()

    # --- stage 1: O(1)-approximation (Theorem 3.1) -------------------------
    if approx_value is None:
        from repro.approx.approximate import approximate_minimum_cut

        params = hierarchy_params if hierarchy_params is not None else HierarchyParams()
        with ledger.phase("approximate"):
            approx = approximate_minimum_cut(
                graph, params=params, rng=rng, ledger=ledger
            )
        approx_value = max(approx.estimate, 1e-12)
    lambda_under = float(approx_value) / 2.0  # Section 4.2's underestimate

    # --- stage 2: skeleton + tree packing (Theorem 4.18) -------------------
    if max_trees == "auto":
        max_trees = int(math.ceil(3 * math.log2(max(graph.n, 2))))
    with ledger.phase("packing"):
        packing = pack_trees(
            graph,
            lambda_under,
            skeleton_params=skeleton_params,
            packing_iterations=packing_iterations,
            max_trees=max_trees,
            rng=rng,
            ledger=ledger,
        )

    # --- stage 3: per-tree 2-respecting min-cut (Theorem 4.2) --------------
    branching = branching_for_epsilon(graph.n, epsilon)
    best: Optional[CutResult] = None
    with ledger.phase("two-respecting"):
        with ledger.parallel() as par:
            for parent in packing.tree_parents:
                _checkpoint("mincut.tree")
                with par.branch():
                    res = two_respecting_min_cut(
                        graph,
                        parent,
                        branching=branching,
                        decomposition=decomposition,
                        ledger=ledger,
                    )
                    if best is None or res.value < best.value:
                        best = res
    assert best is not None  # packing always yields >= 1 tree
    stats = dict(best.stats)
    stats.update(
        {
            "num_trees": float(packing.num_trees),
            "skeleton_edges": float(packing.skeleton.skeleton.m),
            "skeleton_p": float(packing.skeleton.p),
            "lambda_underestimate": float(lambda_under),
            "packing_iterations": float(packing.packing.iterations),
            "branching": float(branching),
        }
    )
    return CutResult(
        value=best.value,
        side=best.side,
        witness_edges=best.witness_edges,
        stats=stats,
    )
