"""The exact parallel minimum cut (Theorems 4.1 and 4.26) — the paper's
headline algorithm and this library's main entry point.

    approximate (Section 3)  ->  skeleton + tree packing (Section 4.2)
        ->  per-tree minimum 2-respecting cut (Section 4.1)  ->  min.

Every candidate tree's 2-respecting search runs in a logically-parallel
ledger branch (the searches are independent — Section 4's equations (1)
and (2)); each inspected value is a genuine cut of G, so the result is
always an upper bound on the minimum cut and equals it w.h.p. (and in
``thorough`` mode — testing *every* distinct packed tree — the failure
probability at benchmark scale is unobservably small; see DESIGN.md
section 5).

The pipeline knobs are documented once in
:class:`repro.params.CutPipelineParams`; ``trace=True`` runs attach a
:class:`repro.obs.RunReport` (phase spans + counters) to the result.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Literal, Optional

import numpy as np

from repro import obs
from repro.errors import GraphFormatError, InvalidParameterError
from repro.graphs.graph import Graph
from repro.graphs.validate import ensure_finite_weights
from repro.packing.karger import pack_trees
from repro.params import CutPipelineParams
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import checkpoint as _checkpoint
from repro.results import CutResult
from repro.sparsify.hierarchy import HierarchyParams
from repro.sparsify.skeleton import SkeletonParams
from repro.tworespect.algorithm import two_respecting_min_cut

__all__ = ["minimum_cut", "branching_for_epsilon"]


def _restore_rng(rng: np.random.Generator, payload: dict) -> None:
    """Rewind ``rng`` to the state snapshotted when ``payload`` was saved,
    so a resumed pipeline consumes exactly the draws an uninterrupted one
    would (the bit-identical-resume contract)."""
    state = payload.get("rng_state")
    if state is not None:
        rng.bit_generator.state = state


def _cut_to_payload(res: CutResult) -> dict:
    """A picklable snapshot of a stage-3 candidate (``CutResult.stats``
    is a MappingProxyType, which pickle refuses)."""
    return {
        "value": res.value,
        "side": np.asarray(res.side, dtype=bool),
        "witness_edges": res.witness_edges,
        "stats": dict(res.stats),
    }


def _cut_from_payload(payload: dict) -> CutResult:
    return CutResult(
        value=payload["value"],
        side=payload["side"],
        witness_edges=payload["witness_edges"],
        stats=payload["stats"],
    )


def branching_for_epsilon(n: int, epsilon: Optional[float]) -> int:
    """Range-tree degree ``max(2, round(n^epsilon))`` (Section 4.3).

    ``epsilon=None`` (or any value driving the degree to 2) selects the
    general-graph structure of Lemma 4.9.
    """
    if epsilon is not None and epsilon <= 0:
        raise InvalidParameterError("epsilon must be positive")
    if epsilon is None or n < 2:
        return 2
    return max(2, int(round(n**epsilon)))


def minimum_cut(
    graph: Graph,
    *,
    epsilon: Optional[float] = None,
    approx_value: Optional[float] = None,
    max_trees: int | None | Literal["auto"] = "auto",
    decomposition: Literal["heavy", "bough"] = "heavy",
    skeleton_params: SkeletonParams = SkeletonParams(),
    hierarchy_params: Optional[HierarchyParams] = None,
    packing_iterations: Optional[int] = None,
    pipeline: Optional[CutPipelineParams] = None,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
    trace: bool = False,
) -> CutResult:
    """Minimum cut of a weighted undirected graph, w.h.p. exact.

    Parameters
    ----------
    graph:
        The input.  Disconnected inputs return value 0 with a component
        as the side mask.
    epsilon, max_trees, decomposition, skeleton_params, hierarchy_params,
    packing_iterations:
        The pipeline knobs; see :class:`repro.params.CutPipelineParams`
        for the single documented reference.
    approx_value:
        A known O(1)-approximation of the min cut; skips the Section 3
        stage (used, e.g., when called *from* that stage on certificate
        layers whose expected cut is known — Claim 3.20).
    pipeline:
        The bundled spelling of the knobs above (mutually exclusive with
        passing a non-default individual knob).
    rng:
        Seeded generator; the algorithm is deterministic given it.
    trace:
        Record a :class:`repro.obs.RunReport` (phase spans, counter
        registry, Chrome-trace export) and attach it as ``.report``.
        When no ``ledger`` is supplied a private one is allocated so the
        report still carries real work/depth deltas.  Tracing never
        charges the ledger — accounting is bit-identical either way.

    Returns
    -------
    CutResult — value, side mask, witness tree edges, stage statistics.
    """
    params = CutPipelineParams.resolve(
        pipeline,
        epsilon=epsilon,
        max_trees=max_trees,
        decomposition=decomposition,
        skeleton=skeleton_params,
        hierarchy=hierarchy_params,
        packing_iterations=packing_iterations,
    )
    if trace and not obs.tracing_active():
        if ledger is NULL_LEDGER:
            ledger = Ledger()
        tracer = obs.Tracer(ledger=ledger)
        with tracer.activate():
            res = _minimum_cut_impl(graph, params, approx_value, rng, ledger)
        report = tracer.report(
            algorithm="minimum_cut", n=graph.n, m=graph.m
        )
        return dataclasses.replace(res, report=report)
    return _minimum_cut_impl(graph, params, approx_value, rng, ledger)


def _minimum_cut_impl(
    graph: Graph,
    params: CutPipelineParams,
    approx_value: Optional[float],
    rng: Optional[np.random.Generator],
    ledger: Ledger,
    hooks=None,
) -> CutResult:
    """The staged pipeline body.

    ``hooks`` (duck-typed; see
    :class:`repro.resilience.checkpointing.PipelineHooks`) persists and
    restores completed-stage artifacts for checkpoint/resume.  Each
    ``save_stage`` snapshots the generator state alongside the payload,
    and each restored stage rewinds ``rng`` to that snapshot, so a
    resumed run consumes exactly the randomness an uninterrupted one
    would — the resumed result is bit-identical.  ``hooks=None`` (every
    direct call) is zero-overhead.
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    ensure_finite_weights(graph)
    k, labels = graph.connected_components()
    if k > 1:
        return CutResult(value=0.0, side=labels == labels[0], stats={"num_trees": 0.0})
    if graph.n == 2:
        return CutResult(
            value=graph.total_weight,
            side=np.array([True, False]),
            stats={"num_trees": 0.0},
        )
    rng = rng if rng is not None else np.random.default_rng()

    # --- stage 1: O(1)-approximation (Theorem 3.1) -------------------------
    if approx_value is None:
        loaded = hooks.load_stage("approx") if hooks is not None else None
        if loaded is not None:
            approx_value = loaded["approx_value"]
            _restore_rng(rng, loaded)
        else:
            from repro.approx.approximate import approximate_minimum_cut

            hier = params.hierarchy if params.hierarchy is not None else HierarchyParams()
            with obs.phase("approximate", ledger):
                approx = approximate_minimum_cut(
                    graph, params=hier, rng=rng, ledger=ledger
                )
            approx_value = max(approx.estimate, 1e-12)
            if hooks is not None:
                hooks.save_stage("approx", {"approx_value": approx_value}, rng=rng)
    lambda_under = float(approx_value) / 2.0  # Section 4.2's underestimate

    # --- stage 2: skeleton + tree packing (Theorem 4.18) -------------------
    max_trees = params.max_trees
    if max_trees == "auto":
        max_trees = int(math.ceil(3 * math.log2(max(graph.n, 2))))
    loaded = hooks.load_stage("packing") if hooks is not None else None
    if loaded is not None:
        tree_parents = loaded["tree_parents"]
        packing_stats = loaded["stats"]
        _restore_rng(rng, loaded)
    else:
        with obs.phase("packing", ledger):
            packing = pack_trees(
                graph,
                lambda_under,
                skeleton_params=params.skeleton,
                packing_iterations=params.packing_iterations,
                max_trees=max_trees,
                rng=rng,
                ledger=ledger,
            )
        tree_parents = packing.tree_parents
        packing_stats = {
            "num_trees": float(packing.num_trees),
            "skeleton_edges": float(packing.skeleton.skeleton.m),
            "skeleton_p": float(packing.skeleton.p),
            "packing_iterations": float(packing.packing.iterations),
        }
        if hooks is not None:
            hooks.save_stage(
                "packing",
                {"tree_parents": list(tree_parents), "stats": packing_stats},
                rng=rng,
            )

    # --- stage 3: per-tree 2-respecting min-cut (Theorem 4.2) --------------
    branching = branching_for_epsilon(graph.n, params.epsilon)
    best: Optional[CutResult] = None
    trees_done = 0
    loaded = hooks.load_stage("trees") if hooks is not None else None
    if loaded is not None:
        trees_done = loaded["done"]
        if loaded["best"] is not None:
            best = _cut_from_payload(loaded["best"])
        _restore_rng(rng, loaded)
    with obs.phase("two-respecting", ledger):
        with ledger.parallel() as par:
            for i, parent in enumerate(tree_parents):
                if i < trees_done:
                    continue  # already searched before the checkpoint
                _checkpoint("mincut.tree")
                with par.branch():
                    res = two_respecting_min_cut(
                        graph,
                        parent,
                        branching=branching,
                        decomposition=params.decomposition,
                        ledger=ledger,
                    )
                    if best is None or res.value < best.value:
                        best = res
                if hooks is not None:
                    hooks.save_stage(
                        "trees",
                        {"done": i + 1, "best": _cut_to_payload(best)},
                        rng=rng,
                    )
    assert best is not None  # packing always yields >= 1 tree
    reg = obs.counters()
    if reg.enabled:
        reg.add("mincut.trees_tested", packing_stats["num_trees"])
    stats = dict(best.stats)
    stats.update(packing_stats)
    stats.update(
        {
            "lambda_underestimate": float(lambda_under),
            "branching": float(branching),
        }
    )
    return CutResult(
        value=best.value,
        side=best.side,
        witness_edges=best.witness_edges,
        stats=stats,
    )
