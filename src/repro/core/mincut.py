"""The exact parallel minimum cut (Theorems 4.1 and 4.26) — the paper's
headline algorithm and this library's main entry point.

    approximate (Section 3)  ->  skeleton + tree packing (Section 4.2)
        ->  per-tree minimum 2-respecting cut (Section 4.1)  ->  min.

Every candidate tree's 2-respecting search runs in a logically-parallel
ledger branch (the searches are independent — Section 4's equations (1)
and (2)); each inspected value is a genuine cut of G, so the result is
always an upper bound on the minimum cut and equals it w.h.p. (and in
``thorough`` mode — testing *every* distinct packed tree — the failure
probability at benchmark scale is unobservably small; see DESIGN.md
section 5).

This module is now a thin wrapper: the staged pipeline body lives in
:mod:`repro.engine.stages` (one definition shared with the resilient
driver and :class:`repro.engine.CutEngine`, so engine-mediated results
are bit-identical by construction).  The pipeline knobs are documented
once in :class:`repro.params.CutPipelineParams`; ``trace=True`` runs
attach a :class:`repro.obs.RunReport` (phase spans + counters) to the
result.
"""

from __future__ import annotations

import dataclasses
from typing import Literal, Optional

import numpy as np

from repro import obs
from repro.engine.stages import branching_for_epsilon, run_pipeline
from repro.graphs.graph import Graph
from repro.params import CutPipelineParams
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.results import CutResult
from repro.sparsify.hierarchy import HierarchyParams
from repro.sparsify.skeleton import SkeletonParams

__all__ = ["minimum_cut", "branching_for_epsilon"]


def minimum_cut(
    graph: Graph,
    *,
    epsilon: Optional[float] = None,
    approx_value: Optional[float] = None,
    max_trees: int | None | Literal["auto"] = "auto",
    decomposition: Literal["heavy", "bough"] = "heavy",
    skeleton_params: SkeletonParams = SkeletonParams(),
    hierarchy_params: Optional[HierarchyParams] = None,
    packing_iterations: Optional[int] = None,
    pipeline: Optional[CutPipelineParams] = None,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
    trace: bool = False,
) -> CutResult:
    """Minimum cut of a weighted undirected graph, w.h.p. exact.

    Parameters
    ----------
    graph:
        The input.  Disconnected inputs return value 0 with a component
        as the side mask.
    epsilon, max_trees, decomposition, skeleton_params, hierarchy_params,
    packing_iterations:
        The pipeline knobs; see :class:`repro.params.CutPipelineParams`
        for the single documented reference.
    approx_value:
        A known O(1)-approximation of the min cut; skips the Section 3
        stage (used, e.g., when called *from* that stage on certificate
        layers whose expected cut is known — Claim 3.20).
    pipeline:
        The bundled spelling of the knobs above (mutually exclusive with
        passing a non-default individual knob).
    rng:
        Seeded generator; the algorithm is deterministic given it.
    trace:
        Record a :class:`repro.obs.RunReport` (phase spans, counter
        registry, Chrome-trace export) and attach it as ``.report``.
        When no ``ledger`` is supplied a private one is allocated so the
        report still carries real work/depth deltas.  Tracing never
        charges the ledger — accounting is bit-identical either way.

    Returns
    -------
    CutResult — value, side mask, witness tree edges, stage statistics.

    See also
    --------
    repro.engine.CutEngine : the staged/cached spelling of the same
        pipeline, for repeated queries over one graph.
    """
    params = CutPipelineParams.resolve(
        pipeline,
        epsilon=epsilon,
        max_trees=max_trees,
        decomposition=decomposition,
        skeleton=skeleton_params,
        hierarchy=hierarchy_params,
        packing_iterations=packing_iterations,
    )
    if trace and not obs.tracing_active():
        if ledger is NULL_LEDGER:
            ledger = Ledger()
        tracer = obs.Tracer(ledger=ledger)
        with tracer.activate():
            res = _minimum_cut_impl(graph, params, approx_value, rng, ledger)
        report = tracer.report(
            algorithm="minimum_cut", n=graph.n, m=graph.m
        )
        return dataclasses.replace(res, report=report)
    return _minimum_cut_impl(graph, params, approx_value, rng, ledger)


def _minimum_cut_impl(
    graph: Graph,
    params: CutPipelineParams,
    approx_value: Optional[float],
    rng: Optional[np.random.Generator],
    ledger: Ledger,
    hooks=None,
) -> CutResult:
    """The staged pipeline body — see
    :func:`repro.engine.stages.run_pipeline` (this alias is the
    resilient driver's entry, kept here so the driver depends on the
    core module, not the engine package layout)."""
    return run_pipeline(graph, params, approx_value, rng, ledger, hooks=hooks)
