"""Enumerating *all* minimum cuts (extension feature).

Karger's packing argument gives more than one optimum: w.h.p. *every*
minimum cut 2-respects a constant fraction of the packed trees, so
scanning each packed tree for all 1- and 2-edge choices achieving the
optimum enumerates every minimum cut of the graph.  (A weighted graph
has at most O(n^2) minimum cuts; cycles attain the bound.)

The scan is exhaustive per tree — O(n^2) cut queries — because we must
surface *ties*, which the Monge searches deliberately prune.  This is an
extension beyond the paper's headline (which only needs one optimum);
the work bound is documented in DESIGN.md's extensions list.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.mincut import minimum_cut
from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.packing.karger import pack_trees
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import postorder
from repro.rangesearch.cutqueries import NaiveCutOracle
from repro.results import CutResult
from repro.trees.binary import binarize_parent

__all__ = ["all_minimum_cuts"]


def _canonical(side: np.ndarray) -> Tuple[bool, ...]:
    """Canonical key of a bipartition (vertex 0 pinned to False)."""
    if side[0]:
        side = ~side
    return tuple(bool(x) for x in side)


def all_minimum_cuts(
    graph: Graph,
    *,
    rng: Optional[np.random.Generator] = None,
    atol: float = 1e-9,
    ledger: Ledger = NULL_LEDGER,
) -> List[CutResult]:
    """All distinct minimum cuts of ``graph`` (w.h.p. complete).

    Returns one :class:`CutResult` per distinct vertex bipartition
    attaining the minimum value, sorted by the size of the smaller side.

    Notes
    -----
    Completeness holds w.h.p. by the packing property; the per-tree scan
    is exhaustive so no tie is pruned.  Work is O(n^2 m / trees) in this
    reference implementation — use :func:`repro.core.minimum_cut` when
    only one optimum is needed.
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    k, labels = graph.connected_components()
    if k > 1:
        # every union of components is a zero cut; report the
        # single-component sides only (the standard convention)
        seen: Set[Tuple[bool, ...]] = set()
        results: List[CutResult] = []
        for c in np.unique(labels):
            side = labels == c
            if side.all():
                continue
            key = _canonical(side)
            if key not in seen:
                seen.add(key)
                results.append(CutResult(value=0.0, side=side))
        return results

    rng = rng if rng is not None else np.random.default_rng()
    best = minimum_cut(graph, rng=rng, ledger=ledger)
    lam = best.value

    packing = pack_trees(
        graph,
        max(lam, 1e-12) / 2.0,
        max_trees=None,  # thorough: scan every distinct packed tree
        rng=rng,
        ledger=ledger,
    )
    seen: Set[Tuple[bool, ...]] = set()
    results: List[CutResult] = []
    for parent in packing.tree_parents:
        rt = postorder(binarize_parent(parent).parent)
        oracle = NaiveCutOracle(graph, rt)
        edges = [int(x) for x in rt.tree_edges()]
        posts = rt.post[: graph.n]
        for i, a in enumerate(edges):
            in_a = (rt.start(a) <= posts) & (posts <= rt.post[a])
            for b in edges[i:]:
                val = oracle.cut(a, b, ledger=ledger)
                if abs(val - lam) > atol:
                    continue
                if a == b:
                    side = in_a
                else:
                    in_b = (rt.start(b) <= posts) & (posts <= rt.post[b])
                    side = in_a ^ in_b
                if not side.any() or side.all():
                    continue
                if abs(graph.cut_value(side) - lam) > atol:
                    continue  # virtual-edge artefact with a different real cut
                key = _canonical(side)
                if key not in seen:
                    seen.add(key)
                    results.append(
                        CutResult(value=lam, side=side, witness_edges=(a, b))
                    )
    results.sort(key=lambda r: int(min(r.side.sum(), (~r.side).sum())))
    return results
