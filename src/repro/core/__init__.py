"""The paper's headline algorithm: exact parallel minimum cut."""

from repro.core.allcuts import all_minimum_cuts
from repro.core.mincut import branching_for_epsilon, minimum_cut
from repro.results import ApproxResult, CutResult

__all__ = [
    "minimum_cut",
    "all_minimum_cuts",
    "branching_for_epsilon",
    "CutResult",
    "ApproxResult",
]
